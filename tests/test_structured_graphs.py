"""Semantic tests on structured families with hand-checkable optima.

Random-graph tests catch generic bugs; these catch *systematic* biases —
an algorithm that quietly favors low-degree vertices, mishandles
bipartite structure, or breaks on disconnected inputs will fail here
while passing aggregate checks.
"""

import pytest

from repro.baselines.blossom import maximum_matching_size
from repro.core.integral import mpc_maximum_matching
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.core.vertex_cover import mpc_vertex_cover
from repro.graph.generators import (
    caterpillar,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_vertex_cover,
)


def disjoint_union(*graphs: Graph) -> Graph:
    """Disjoint union with shifted labels."""
    total = sum(g.num_vertices for g in graphs)
    union = Graph(total)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            union.add_edge(u + offset, v + offset)
        offset += g.num_vertices
    return union


class TestCompleteBipartite:
    def make(self, a: int, b: int) -> Graph:
        g = Graph(a + b)
        for u in range(a):
            for v in range(a, a + b):
                g.add_edge(u, v)
        return g

    def test_mis_takes_larger_side(self):
        g = self.make(5, 20)
        result = mis_mpc(g, seed=1)
        assert is_maximal_independent_set(g, result.mis)
        # Any MIS of K_{5,20} is one full side; sizes are 5 or 20.
        assert len(result.mis) in (5, 20)

    def test_matching_near_smaller_side(self):
        g = self.make(8, 30)
        result = mpc_maximum_matching(g, seed=2)
        assert is_matching(g, result.matching)
        assert len(result.matching) >= 8 / 2.2

    def test_cover_close_to_smaller_side(self):
        g = self.make(6, 40)
        result = mpc_vertex_cover(g, seed=3)
        assert is_vertex_cover(g, result.cover)
        assert result.size <= 3 * 6  # optimum is 6; (2+eps) allows ~13


class TestDisjointComponents:
    def test_mis_spans_all_components(self):
        g = disjoint_union(cycle_graph(5), star_graph(6), path_graph(4))
        result = mis_mpc(g, seed=4)
        assert is_maximal_independent_set(g, result.mis)

    def test_matching_collects_from_all_components(self):
        g = disjoint_union(*[complete_graph(4)] * 10)
        result = mpc_maximum_matching(g, seed=5)
        # Each K4 has a perfect matching of size 2; optimum 20.
        assert len(result.matching) >= 20 / 2.2
        assert is_matching(g, result.matching)

    def test_fractional_matching_on_disjoint_edges(self):
        g = disjoint_union(*[path_graph(2)] * 25)
        result = mpc_fractional_matching(g, seed=6)
        # 25 disjoint edges: maximum (fractional) matching is 25.
        assert result.weight >= 25 / 2.5
        assert is_vertex_cover(g, result.vertex_cover)


class TestGridAndCaterpillar:
    def test_grid_matching(self):
        g = grid_graph(6, 6)  # 36 vertices, perfect matching of 18
        result = mpc_maximum_matching(g, seed=7)
        assert len(result.matching) >= 18 / 2.2

    def test_caterpillar_cover_is_spine_like(self):
        g = caterpillar(10, 3)
        optimum = maximum_matching_size(g)
        cover = mpc_vertex_cover(g, seed=8)
        assert is_vertex_cover(g, cover.cover)
        assert cover.size <= 3 * optimum + 2

    def test_cycle_parities(self):
        for n in (6, 7, 12, 13):
            g = cycle_graph(n)
            result = mpc_maximum_matching(g, seed=n)
            assert len(result.matching) >= (n // 2) / 2.2
            mis = mis_mpc(g, seed=n)
            assert is_maximal_independent_set(g, mis.mis)


class TestHighContrastDegrees:
    def test_double_star(self):
        """Two hubs joined by an edge, many leaves each: optimum matching
        is 2 (hub-leaf + hub-leaf) or 1+...; cover optimum is 2 (hubs)."""
        g = Graph(42)
        g.add_edge(0, 1)
        for leaf in range(2, 22):
            g.add_edge(0, leaf)
        for leaf in range(22, 42):
            g.add_edge(1, leaf)
        cover = mpc_vertex_cover(g, seed=9)
        assert is_vertex_cover(g, cover.cover)
        assert cover.size <= 8  # optimum 2, generous (2+eps) slack at n=42
        matching = mpc_maximum_matching(g, seed=9)
        assert 1 <= len(matching.matching) <= 2
