"""Unit tests for the algorithm configuration dataclasses."""

import math

import pytest

from repro.core.config import MatchingConfig, MISConfig


class TestMISConfig:
    def test_defaults_match_paper(self):
        config = MISConfig()
        assert config.alpha == 0.75

    def test_sparse_threshold_grows_polylog(self):
        config = MISConfig(sparse_degree_exponent=2.0)
        t_small = config.sparse_degree_threshold(256)
        t_large = config.sparse_degree_threshold(2**20)
        assert t_small == int(8**2)
        assert t_large == int(20**2)
        assert t_large > t_small

    def test_tiny_n_floor(self):
        assert MISConfig().sparse_degree_threshold(2) == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"sparse_degree_exponent": 0},
            {"memory_factor": 0},
            {"luby_rounds_factor": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MISConfig(**kwargs)

    def test_frozen(self):
        config = MISConfig()
        with pytest.raises(Exception):
            config.alpha = 0.5  # type: ignore[misc]


class TestMatchingConfig:
    def test_threshold_interval_matches_paper(self):
        config = MatchingConfig(epsilon=0.1)
        assert config.threshold_low == pytest.approx(0.6)
        assert config.threshold_high == pytest.approx(0.8)

    def test_degree_floor(self):
        config = MatchingConfig(degree_floor_exponent=2.0)
        assert config.degree_floor(1024) == 100
        assert config.degree_floor(2) == 4

    def test_iterations_per_phase_logarithmic(self):
        config = MatchingConfig(iterations_scale=2.0)
        assert config.iterations_per_phase(1) == 1
        assert config.iterations_per_phase(2) == 2
        assert config.iterations_per_phase(1024) == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": 0.5},
            {"iterations_scale": 0},
            {"degree_floor_exponent": 0},
            {"memory_factor": 0},
            {"max_direct_iterations": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MatchingConfig(**kwargs)

    def test_fractional_memory_factor_allowed(self):
        config = MatchingConfig(memory_factor=0.5)
        assert config.memory_factor == 0.5
