"""Unit tests for the CONGESTED-CLIQUE model, Lenzen routing, and CC MIS."""

import pytest

from repro.congested_clique.mis import congested_clique_mis
from repro.congested_clique.model import IDS_PER_MESSAGE, CongestedClique
from repro.congested_clique.routing import LENZEN_ROUND_COST, lenzen_route
from repro.core.config import MISConfig
from repro.graph.generators import complete_graph, gnp_random_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.properties import is_maximal_independent_set
from repro.mpc.errors import ProtocolError


class TestModel:
    def test_round_counting(self):
        clique = CongestedClique(5)
        clique.broadcast_round()
        clique.charge_rounds(3, "something")
        assert clique.rounds == 4

    def test_point_to_point_bandwidth(self):
        clique = CongestedClique(3)
        clique.round_of_messages([(0, 1, IDS_PER_MESSAGE)])
        assert clique.rounds == 1

    def test_bandwidth_violation_raises(self):
        clique = CongestedClique(3)
        with pytest.raises(ProtocolError):
            clique.round_of_messages([(0, 1, IDS_PER_MESSAGE + 1)])

    def test_pair_aggregation(self):
        clique = CongestedClique(3)
        with pytest.raises(ProtocolError):
            clique.round_of_messages([(0, 1, 2), (0, 1, 1)])

    def test_invalid_player(self):
        clique = CongestedClique(2)
        with pytest.raises(ProtocolError):
            clique.round_of_messages([(0, 5, 1)])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CongestedClique(0)


class TestLenzenRouting:
    def test_routes_and_charges_constant(self):
        clique = CongestedClique(4)
        inboxes = lenzen_route(
            clique, [(0, 1, "a"), (2, 1, "b"), (3, 0, "c")]
        )
        assert clique.rounds == LENZEN_ROUND_COST
        assert sorted(inboxes[1]) == ["a", "b"]
        assert inboxes[0] == ["c"]

    def test_volume_precondition_send(self):
        clique = CongestedClique(2)
        messages = [(0, 1, i) for i in range(3)]  # 3 > n = 2
        with pytest.raises(ProtocolError, match="sends"):
            lenzen_route(clique, messages)

    def test_volume_precondition_receive(self):
        clique = CongestedClique(3)
        messages = [(0, 2, 0), (0, 2, 1), (1, 2, 2), (1, 2, 3)]
        with pytest.raises(ProtocolError, match="receives"):
            lenzen_route(clique, messages)

    def test_endpoint_validation(self):
        clique = CongestedClique(2)
        with pytest.raises(ProtocolError):
            lenzen_route(clique, [(0, 9, "x")])


class TestCCMIS:
    def test_output_is_maximal_independent(self):
        graph = gnp_random_graph(150, 0.08, seed=3)
        result = congested_clique_mis(graph, seed=3)
        assert is_maximal_independent_set(graph, result.mis)

    def test_dense_graph_uses_prefix_phases(self):
        graph = gnp_random_graph(400, 0.5, seed=5)
        result = congested_clique_mis(graph, seed=5)
        assert result.prefix_phases >= 1
        assert is_maximal_independent_set(graph, result.mis)

    def test_routed_volume_is_linear_in_n(self):
        graph = gnp_random_graph(300, 0.3, seed=7)
        result = congested_clique_mis(graph, seed=7)
        # Lemma 3.1: the per-phase prefix subgraph has O(n) edges, i.e. a
        # constant number of volume-n Lenzen invocations.
        assert result.max_routed_messages <= 4 * graph.num_vertices

    def test_star(self):
        graph = star_graph(30)
        result = congested_clique_mis(graph, seed=1)
        assert is_maximal_independent_set(graph, result.mis)

    def test_complete_graph_single_vertex(self):
        graph = complete_graph(40)
        result = congested_clique_mis(graph, seed=2)
        assert len(result.mis) == 1

    def test_empty_graph(self):
        result = congested_clique_mis(Graph(0))
        assert result.mis == set()
        assert result.rounds == 0

    def test_edgeless_graph_takes_all(self):
        graph = Graph(9)
        result = congested_clique_mis(graph, seed=1)
        assert result.mis == set(range(9))

    def test_determinism(self):
        graph = gnp_random_graph(100, 0.1, seed=11)
        a = congested_clique_mis(graph, seed=9)
        b = congested_clique_mis(graph, seed=9)
        assert a.mis == b.mis
        assert a.rounds == b.rounds
