"""Unit tests for the sparsified (compressed-Luby) MIS finish."""

import pytest

from repro.core.sparsified_mis import luby_round, sparsified_mis
from repro.graph.generators import cycle_graph, gnp_random_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.properties import is_independent_set, is_maximal_independent_set
from repro.mpc.cluster import MPCCluster
from repro.utils.rng import make_rng


class TestLubyRound:
    def test_winners_are_independent(self):
        g = gnp_random_graph(60, 0.2, seed=1)
        winners = luby_round(g, set(g.vertices()), make_rng(1))
        assert is_independent_set(g, winners)

    def test_isolated_vertices_always_win(self):
        g = Graph(5, [(0, 1)])
        winners = luby_round(g, set(g.vertices()), make_rng(2))
        assert {2, 3, 4} <= winners

    def test_single_active_vertex_wins(self):
        g = star_graph(3)
        winners = luby_round(g, {0}, make_rng(3))
        assert winners == {0}


class TestSparsifiedMIS:
    def test_maximal_on_sparse_graph(self):
        g = gnp_random_graph(200, 0.02, seed=4)
        outcome = sparsified_mis(g, seed=4)
        assert is_maximal_independent_set(g, outcome.mis)

    def test_cycle(self):
        g = cycle_graph(9)
        outcome = sparsified_mis(g, seed=5)
        assert is_maximal_independent_set(g, outcome.mis)

    def test_rounds_are_logarithmic_in_luby_rounds(self):
        g = gnp_random_graph(500, 0.01, seed=6)
        outcome = sparsified_mis(g, seed=6)
        # Compressed: charged rounds must be far below simulated rounds.
        assert outcome.rounds_charged <= outcome.luby_rounds_simulated + 2

    def test_cluster_accounting(self):
        g = gnp_random_graph(100, 0.05, seed=7)
        cluster = MPCCluster(2, words_per_machine=16 * 100)
        outcome = sparsified_mis(g, seed=7, cluster=cluster)
        assert cluster.rounds == outcome.rounds_charged
        assert is_maximal_independent_set(g, outcome.mis)

    def test_respects_active_subset(self):
        g = Graph(4, [(0, 1), (2, 3)])
        outcome = sparsified_mis(g, active={2, 3}, seed=8)
        assert outcome.mis <= {2, 3}
        assert len(outcome.mis & {2, 3}) == 1

    def test_determinism(self):
        g = gnp_random_graph(80, 0.1, seed=9)
        assert sparsified_mis(g, seed=3).mis == sparsified_mis(g, seed=3).mis
