"""Unit tests for synthetic graph generators."""

import math

import pytest

from repro.graph.generators import (
    barabasi_albert,
    caterpillar,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    planted_matching_graph,
    random_bipartite_graph,
    random_weighted_graph,
    star_graph,
)
from repro.baselines.hopcroft_karp import bipartition
from repro.graph.properties import is_matching


class TestGnp:
    def test_determinism(self):
        a = gnp_random_graph(50, 0.2, seed=7)
        b = gnp_random_graph(50, 0.2, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_random_graph(50, 0.2, seed=7)
        b = gnp_random_graph(50, 0.2, seed=8)
        assert a != b

    def test_extremes(self):
        assert gnp_random_graph(20, 0.0).num_edges == 0
        assert gnp_random_graph(6, 1.0).num_edges == 15

    def test_edge_count_near_expectation(self):
        n, p = 400, 0.1
        g = gnp_random_graph(n, p, seed=3)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 0.15 * expected

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            gnp_random_graph(10, 1.5)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random_graph(30, 100, seed=1)
        assert g.num_edges == 100

    def test_dense_path(self):
        g = gnm_random_graph(10, 44, seed=1)  # 44 of 45 possible
        assert g.num_edges == 44

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 7)


class TestBarabasiAlbert:
    def test_sizes(self):
        g = barabasi_albert(100, 3, seed=2)
        assert g.num_vertices == 100
        # seed clique C(4,2)=6 edges + 96 * 3 attachments
        assert g.num_edges == 6 + 96 * 3

    def test_heavy_tail(self):
        g = barabasi_albert(500, 2, seed=5)
        degrees = sorted(g.degrees(), reverse=True)
        # Hubs should far exceed the minimum attachment degree.
        assert degrees[0] > 5 * 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)


class TestBipartite:
    def test_is_bipartite(self):
        g = random_bipartite_graph(20, 30, 0.3, seed=4)
        assert bipartition(g) is not None

    def test_sides_respected(self):
        g = random_bipartite_graph(5, 5, 1.0)
        for u, v in g.edges():
            assert (u < 5) != (v < 5)


class TestPlanted:
    def test_planted_is_perfect_matching(self):
        g, planted = planted_matching_graph(30, noise_edges=50, seed=6)
        assert len(planted) == 30
        assert is_matching(g, planted)
        assert g.num_edges == 30 + 50

    def test_planted_lower_bounds_maximum(self):
        from repro.baselines.blossom import maximum_matching

        g, planted = planted_matching_graph(15, noise_edges=20, seed=7)
        assert len(maximum_matching(g)) >= len(planted) - 0  # perfect


class TestStructured:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert path_graph(1).num_edges == 0

    def test_cycle(self):
        assert cycle_graph(5).num_edges == 5
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.num_edges == 7

    def test_complete(self):
        assert complete_graph(5).num_edges == 10

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_caterpillar(self):
        g = caterpillar(4, 2)
        assert g.num_vertices == 4 + 8
        assert g.num_edges == 3 + 8


class TestWeighted:
    def test_uniform_weights_positive(self):
        wg = random_weighted_graph(30, 0.3, distribution="uniform", seed=8)
        assert all(w > 0 for _, _, w in wg.edges())

    def test_zipf_is_heavy_tailed(self):
        wg = random_weighted_graph(30, 0.5, max_weight=100.0, distribution="zipf", seed=9)
        weights = sorted((w for _, _, w in wg.edges()), reverse=True)
        assert weights[0] == pytest.approx(100.0)
        assert weights[-1] < 10.0

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            random_weighted_graph(10, 0.5, distribution="pareto")
