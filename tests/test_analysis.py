"""Unit tests for analysis: metrics, tables, concentration, experiments."""

import math

import pytest

from repro.analysis.concentration import coupled_run
from repro.analysis.metrics import (
    approximation_ratio,
    doubling_ratios,
    geometric_mean,
    loglog_slope,
    quantiles,
)
from repro.analysis.tables import format_table
from repro.core.config import MatchingConfig
from repro.graph.generators import gnp_random_graph


class TestMetrics:
    def test_approximation_ratio(self):
        assert approximation_ratio(50, 100) == 2.0
        assert approximation_ratio(100, 100) == 1.0
        assert approximation_ratio(0, 10) == math.inf
        assert approximation_ratio(5, 0) == 1.0

    def test_doubling_ratios(self):
        assert doubling_ratios([1, 2, 4]) == [2.0, 2.0]
        assert doubling_ratios([4, 4]) == [1.0]

    def test_loglog_slope_flat_series(self):
        sizes = [2**k for k in range(4, 10)]
        assert loglog_slope(sizes, [7] * 6) == pytest.approx(0.0)

    def test_loglog_slope_linear_in_loglog(self):
        sizes = [2**k for k in range(4, 10)]
        rounds = [3 * math.log2(math.log2(s)) for s in sizes]
        assert loglog_slope(sizes, rounds) == pytest.approx(3.0, abs=0.01)

    def test_loglog_slope_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([4], [1])

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, -1])

    def test_quantiles(self):
        values = list(range(1, 101))
        q = quantiles(values, [0.5, 0.9, 1.0])
        assert q == [50, 90, 100]
        with pytest.raises(ValueError):
            quantiles([], [0.5])
        with pytest.raises(ValueError):
            quantiles([1], [1.5])


class TestTables:
    def test_format_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len({len(line) for line in lines}) <= 2  # header/sep/body align

    def test_floats_rendered(self):
        assert "1.500" in format_table([{"x": 1.5}])

    def test_title_and_empty(self):
        assert format_table([], title="T").startswith("T")
        assert "(no rows)" in format_table([])


class TestConcentration:
    def test_coupled_run_reports(self):
        g = gnp_random_graph(200, 0.08, seed=1)
        report = coupled_run(g, config=MatchingConfig(epsilon=0.1), seed=1)
        assert 0.0 <= report.bad_fraction <= 1.0
        assert report.mean_load_deviation >= 0.0
        assert report.central_weight > 0
        assert report.mpc_weight > 0

    def test_coupled_weights_agree_within_factor(self):
        """Lemma 4.15: the coupled processes stay close, so the two
        fractional weights agree to a modest constant."""
        g = gnp_random_graph(300, 0.06, seed=2)
        report = coupled_run(g, config=MatchingConfig(epsilon=0.1), seed=2)
        ratio = report.mpc_weight / report.central_weight
        assert 0.5 <= ratio <= 2.0

    def test_bad_fraction_is_minority(self):
        g = gnp_random_graph(300, 0.06, seed=3)
        report = coupled_run(g, config=MatchingConfig(epsilon=0.1), seed=3)
        assert report.bad_fraction < 0.5


class TestExperiments:
    def test_e01_shape(self):
        from repro.analysis.experiments import run_e01_mis_rounds

        rows = run_e01_mis_rounds(sizes=(64, 128), avg_degree=8.0, seed=1)
        assert len(rows) == 2
        assert all(row["paper_rounds"] > 0 for row in rows)

    def test_e03_rows(self):
        from repro.analysis.experiments import run_e03_central

        rows = run_e03_central(sizes=(64,), epsilons=(0.1,), seed=2)
        assert rows[0]["matching_ratio"] <= 2.5 + 1e-9

    def test_e06_rows(self):
        from repro.analysis.experiments import run_e06_rounding

        rows = run_e06_rounding(sizes=(128,), seed=3)
        assert rows[0]["yield_per_candidate"] >= rows[0]["paper_guarantee"]
