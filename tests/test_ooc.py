"""Unit tests for ``repro.ooc``: on-disk format, external build, streaming
generators, the counter RNG, and the bounded-RSS solve wiring."""

import json
import os

import numpy as np
import pytest

from repro.api import solve
from repro.core.config import MISConfig, MatchingConfig
from repro.core.thresholds import ThresholdOracle
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.ooc import (
    MMapCSRGraph,
    OOC_SCHEMA_VERSION,
    build_mmap_csr,
    load_csr,
    read_header,
    save_csr,
    write_edge_list,
    write_gnp_edge_list,
    write_powerlaw_edge_list,
)
from repro.utils import counter_rng


def small_csr(n=60, seed=3, degree=6.0, path_dir=None):
    """A deterministic small CSRGraph via the streaming generator."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "edges.txt")
        write_gnp_edge_list(path, n, degree, seed)
        edges = np.loadtxt(path, dtype=np.int64, skiprows=1).reshape(-1, 2)
    return CSRGraph.from_edge_array(n, edges)


class TestFormat:
    def test_save_load_round_trip(self, tmp_path):
        graph = small_csr()
        save_csr(graph, tmp_path / "g")
        loaded = load_csr(tmp_path / "g")
        assert isinstance(loaded, MMapCSRGraph)
        assert loaded == graph
        assert load_csr(tmp_path / "g", materialize=True) == graph

    def test_header_is_the_commit_marker(self, tmp_path):
        graph = small_csr()
        save_csr(graph, tmp_path / "g")
        os.unlink(tmp_path / "g" / "header.json")
        with pytest.raises(FileNotFoundError):
            load_csr(tmp_path / "g")

    def test_unsupported_schema_rejected(self, tmp_path):
        graph = small_csr()
        save_csr(graph, tmp_path / "g")
        header = json.loads((tmp_path / "g" / "header.json").read_text())
        header["schema"] = OOC_SCHEMA_VERSION + 1
        (tmp_path / "g" / "header.json").write_text(json.dumps(header))
        with pytest.raises(ValueError, match="schema"):
            read_header(tmp_path / "g")

    def test_length_mismatch_rejected(self, tmp_path):
        graph = small_csr()
        save_csr(graph, tmp_path / "g")
        header = json.loads((tmp_path / "g" / "header.json").read_text())
        header["num_edges"] += 1
        (tmp_path / "g" / "header.json").write_text(json.dumps(header))
        with pytest.raises(ValueError):
            load_csr(tmp_path / "g")

    def test_indices_file_bytes(self, tmp_path):
        graph = small_csr()
        save_csr(graph, tmp_path / "g")
        loaded = load_csr(tmp_path / "g")
        # npy header + 2m int64 slots
        assert loaded.indices_file_bytes >= 16 * graph.num_edges

    def test_release_is_safe_to_call(self, tmp_path):
        graph = small_csr()
        save_csr(graph, tmp_path / "g")
        loaded = load_csr(tmp_path / "g")
        loaded.release()
        assert loaded.degrees().sum() == 2 * graph.num_edges


class TestBuilder:
    def test_matches_in_memory_build(self, tmp_path):
        path = tmp_path / "edges.txt"
        write_gnp_edge_list(path, 300, 8.0, 11)
        built = build_mmap_csr(path, tmp_path / "g", chunk_edges=97, bucket_rows=64)
        edges = np.loadtxt(path, dtype=np.int64, skiprows=1).reshape(-1, 2)
        assert built == CSRGraph.from_edge_array(300, edges)

    def test_deduplicates_and_handles_both_orders(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("n 5\n3 1\n1 3\n0 4\n4 0\n1 3\n")
        built = build_mmap_csr(path, tmp_path / "g")
        assert built == CSRGraph.from_edges(5, [(1, 3), (0, 4)])

    def test_rejects_self_loops(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n2 2\n")
        with pytest.raises(ValueError, match="self-loop"):
            build_mmap_csr(path, tmp_path / "g")

    def test_rejects_negative_endpoints(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n-2 3\n")
        with pytest.raises(ValueError):
            build_mmap_csr(path, tmp_path / "g")

    def test_interrupted_build_leaves_no_header(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n2 2\n")  # fails mid-build on the self-loop
        with pytest.raises(ValueError):
            build_mmap_csr(path, tmp_path / "g")
        with pytest.raises(FileNotFoundError):
            load_csr(tmp_path / "g")

    def test_gzip_input(self, tmp_path):
        path = tmp_path / "edges.txt.gz"
        write_gnp_edge_list(path, 120, 5.0, 2)
        built = build_mmap_csr(path, tmp_path / "g")
        assert built.num_vertices == 120


class TestGenerators:
    def test_deterministic(self, tmp_path):
        for family in ("random", "powerlaw"):
            a, b = tmp_path / "a.txt", tmp_path / "b.txt"
            write_edge_list(a, family, 200, 6.0, seed=5)
            write_edge_list(b, family, 200, 6.0, seed=5)
            assert a.read_text() == b.read_text()
            assert a.read_text() != ""

    def test_unknown_family(self, tmp_path):
        with pytest.raises(ValueError, match="family"):
            write_edge_list(tmp_path / "x.txt", "clique", 10, 2.0, seed=0)

    def test_gnp_edges_canonical_and_in_range(self, tmp_path):
        path = tmp_path / "g.txt"
        count = write_gnp_edge_list(path, 100, 8.0, 3)
        edges = np.loadtxt(path, dtype=np.int64, skiprows=1).reshape(-1, 2)
        assert len(edges) == count > 0
        assert (edges[:, 0] < edges[:, 1]).all()
        assert edges.min() >= 0 and edges.max() < 100
        keys = edges[:, 0] * 100 + edges[:, 1]
        assert (np.diff(keys) > 0).all()  # strictly increasing: no dups

    def test_gnp_density_near_target(self, tmp_path):
        path = tmp_path / "g.txt"
        count = write_gnp_edge_list(path, 2000, 10.0, 1)
        assert 0.8 * 10_000 < count < 1.2 * 10_000

    def test_powerlaw_no_self_loops(self, tmp_path):
        path = tmp_path / "g.txt"
        write_powerlaw_edge_list(path, 150, 6.0, 9)
        edges = np.loadtxt(path, dtype=np.int64, skiprows=1).reshape(-1, 2)
        assert (edges[:, 0] < edges[:, 1]).all()
        assert edges.max() < 150


class TestCounterRng:
    def test_deterministic_and_keyed(self):
        ents = np.arange(50, dtype=np.int64)
        a = counter_rng.uniform01(123, ents, 7)
        assert np.array_equal(a, counter_rng.uniform01(123, ents, 7))
        assert not np.array_equal(a, counter_rng.uniform01(124, ents, 7))
        assert not np.array_equal(a, counter_rng.uniform01(123, ents, 8))

    def test_order_free(self):
        """Chunked / shuffled evaluation gives identical per-entity draws."""
        ents = np.arange(1000, dtype=np.int64)
        full = counter_rng.uniform01(9, ents, 0)
        chunked = np.concatenate(
            [counter_rng.uniform01(9, ents[i : i + 37], 0) for i in range(0, 1000, 37)]
        )
        assert np.array_equal(full, chunked)
        perm = np.random.default_rng(0).permutation(1000)
        assert np.array_equal(full[perm], counter_rng.uniform01(9, ents[perm], 0))

    def test_uniform01_range_and_spread(self):
        draws = counter_rng.uniform01(42, np.arange(20_000), 1)
        assert draws.min() >= 0.0 and draws.max() < 1.0
        assert abs(draws.mean() - 0.5) < 0.02
        assert len(np.unique(draws)) == len(draws)

    def test_integers(self):
        draws = counter_rng.integers(7, np.arange(10_000), 3, high=13)
        assert draws.dtype == np.int64
        assert draws.min() >= 0 and draws.max() <= 12
        assert len(np.unique(draws)) == 13
        with pytest.raises(ValueError):
            counter_rng.integers(7, np.arange(4), 0, high=0)

    def test_permutation(self):
        perm = counter_rng.permutation(5, 1000)
        assert np.array_equal(np.sort(perm), np.arange(1000))
        assert np.array_equal(perm, counter_rng.permutation(5, 1000))
        assert not np.array_equal(perm, counter_rng.permutation(6, 1000))

    def test_derive_key_namespaced(self):
        assert counter_rng.derive_key(1, "a") != counter_rng.derive_key(1, "b")
        assert counter_rng.derive_key(1, "a") != counter_rng.derive_key(2, "a")
        assert 0 <= counter_rng.derive_key(1, "a") < 2**64


class TestThresholdOracleCounter:
    def test_mode_property_and_validation(self):
        assert ThresholdOracle(0.2, 0.4, seed=0).mode == "sha"
        assert ThresholdOracle(0.2, 0.4, seed=0, mode="counter").mode == "counter"
        with pytest.raises(ValueError):
            ThresholdOracle(0.2, 0.4, seed=0, mode="philox")

    def test_values_in_band_and_deterministic(self):
        oracle = ThresholdOracle(0.2, 0.4, seed=5, mode="counter")
        vs = np.arange(500)
        draws = oracle.thresholds_batch(vs, 3)
        assert (draws >= 0.2).all() and (draws <= 0.4).all()
        again = ThresholdOracle(0.2, 0.4, seed=5, mode="counter")
        assert np.array_equal(draws, again.thresholds_batch(vs, 3))

    def test_scalar_batch_parity_and_crosses(self):
        oracle = ThresholdOracle(0.2, 0.4, seed=5, mode="counter")
        vs = np.arange(40)
        batch = oracle.thresholds_batch(vs, 2)
        for v in range(40):
            assert oracle.threshold(v, 2) == batch[v]
        estimates = np.linspace(0.0, 0.6, 40)
        decisions = oracle.crosses_batch(vs, 2, estimates)
        for v in range(40):
            assert oracle.crosses(v, 2, estimates[v]) == decisions[v]

    def test_counter_differs_from_sha(self):
        sha = ThresholdOracle(0.2, 0.4, seed=5)
        counter = ThresholdOracle(0.2, 0.4, seed=5, mode="counter")
        vs = np.arange(100)
        assert not np.array_equal(
            sha.thresholds_batch(vs, 0), counter.thresholds_batch(vs, 0)
        )


class TestConfigRng:
    def test_validation(self):
        assert MISConfig().rng == "sha"
        assert MISConfig(rng="counter").rng == "counter"
        assert MatchingConfig(rng="counter").rng == "counter"
        with pytest.raises(ValueError):
            MISConfig(rng="philox")
        with pytest.raises(ValueError):
            MatchingConfig(rng="philox")

    def test_counter_requires_luby(self):
        with pytest.raises(ValueError):
            MISConfig(rng="counter", sparse_strategy="ghaffari")


@pytest.fixture(scope="module")
def trio(tmp_path_factory):
    """(Graph, CSRGraph, MMapCSRGraph) of one 250-vertex instance."""
    tmp = tmp_path_factory.mktemp("trio")
    path = tmp / "edges.txt"
    write_gnp_edge_list(path, 250, 8.0, 17)
    mapped = build_mmap_csr(path, tmp / "g")
    csr = CSRGraph(np.array(mapped.indptr), np.array(mapped.indices))
    plain = Graph(250)
    for u, v in csr.edges():
        plain.add_edge(u, v)
    return plain, csr, mapped


class TestSolveParity:
    @pytest.mark.parametrize("task", ["mis", "fractional_matching"])
    def test_sha_byte_parity_across_representations(self, trio, task):
        plain, csr, mapped = trio
        reports = [
            solve(task, g, backend="mpc", seed=23) for g in (plain, csr, mapped)
        ]
        assert reports[0].solution == reports[1].solution == reports[2].solution
        assert reports[0].rounds == reports[1].rounds == reports[2].rounds
        assert all(r.valid for r in reports)
        assert all(r.config["rng"] == "sha" for r in reports)

    @pytest.mark.parametrize("task", ["mis", "fractional_matching"])
    def test_counter_mode_representation_independent(self, trio, task):
        _, csr, mapped = trio
        a = solve(task, csr, backend="mpc", seed=23, rng="counter")
        b = solve(task, mapped, backend="mpc", seed=23, rng="counter")
        c = solve(task, csr, backend="mpc", seed=23, rng="counter")
        assert a.solution == b.solution == c.solution
        assert a.rounds == b.rounds
        assert a.valid and b.valid
        assert a.config["rng"] == "counter"

    def test_counter_mis_solution_is_canonical_list(self, trio):
        _, _, mapped = trio
        report = solve("mis", mapped, backend="mpc", seed=1, rng="counter")
        assert report.solution == sorted(report.solution)
        assert all(isinstance(v, int) for v in report.solution[:5])

    def test_compaction_budget_does_not_change_output(self, trio, monkeypatch):
        """Counter Luby is exact arithmetic: compacting earlier (tiny
        budget) must not change a single chosen vertex."""
        import importlib

        sp = importlib.import_module("repro.core.sparsified_mis")

        _, csr, _ = trio
        base = solve("mis", csr, backend="mpc", seed=4, rng="counter")
        monkeypatch.setattr(sp, "_COMPACT_SLOT_BUDGET", 8)
        tiny = solve("mis", csr, backend="mpc", seed=4, rng="counter")
        assert base.solution == tiny.solution

    def test_facade_rng_validation(self, trio):
        plain, _, _ = trio
        with pytest.raises(ValueError, match="rng"):
            solve("mis", plain, backend="mpc", rng="philox")
        # configless backends ignore the sweep-wide setting
        report = solve("mis", plain, backend="greedy", seed=0, rng="counter")
        assert report.valid

    def test_verify_certificate_in_counter_mode(self, trio):
        plain, _, _ = trio
        report = solve(
            "mis", plain, backend="mpc", seed=3, rng="counter", verify=True
        )
        assert report.verified


class TestBenchDiffOoc:
    def _payload(self, rss):
        return {
            "suite": "ooc",
            "environment": {"cpu_count": 1},
            "results": [
                {
                    "task": "mis",
                    "family": "random",
                    "n": 1000,
                    "seconds": 1.0,
                    "peak_rss_bytes": rss,
                }
            ],
        }

    def test_layout_and_cells(self):
        from tools.bench_diff import cells

        assert cells(self._payload(10)) == {"mis/random/1000": 1.0}

    def test_rss_gate(self, capsys):
        from tools.bench_diff import rss_gate

        assert rss_gate(self._payload(100), fail_rss_over=200) == 0
        assert rss_gate(self._payload(300), fail_rss_over=200) == 1
        empty = {"suite": "ooc", "results": [{"task": "t", "family": "f", "n": 1, "seconds": 0.1}]}
        assert rss_gate(empty, fail_rss_over=200) == 1  # vacuous pass refused
        capsys.readouterr()

    def test_main_fail_rss_over(self, tmp_path, capsys):
        from tools.bench_diff import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(self._payload(100)))
        new.write_text(json.dumps(self._payload(100)))
        assert main([str(old), str(new), "--fail-rss-over", "200"]) == 0
        new.write_text(json.dumps(self._payload(300)))
        assert main([str(old), str(new), "--fail-rss-over", "200"]) == 1
        capsys.readouterr()

    def test_require_cell_still_works_for_ooc(self, tmp_path, capsys):
        from tools.bench_diff import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(self._payload(100)))
        new.write_text(json.dumps(self._payload(100)))
        assert main([str(old), str(new), "--require-cell", "mis/random/1000"]) == 0
        assert main([str(old), str(new), "--require-cell", "mis/random/9"]) == 1
        capsys.readouterr()
