"""repro.dist.faults: chaos injection, supervision, and recovery parity.

Two layers of guarantees are pinned here:

* **Mechanism** — the fault plan fires deterministically, the supervised
  transport retries/respawns/degrades exactly per policy, the recovery
  log records what happened, and no failure mode can hang (every wait in
  this file is deadline-bounded).
* **Byte-identity under chaos** — the conformance matrix re-runs the
  PR 6 parity contract under a grid of fault plans: for every MPC task
  and every fault kind (crash, delay-past-deadline, corruption, kernel
  raise, and repeated crashes that exhaust the respawn budget and force
  mid-solve degradation), the recovered run's report equals the
  ``executor=None`` sequential run bit-for-bit, with the recovery events
  on the record in ``extras["faults"]``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api import registry, solve
from repro.dist import (
    ChaosTransport,
    DistCorruptionError,
    DistExecutionError,
    DistExecutor,
    FaultPlan,
    FaultPolicy,
    FaultSpec,
    LocalTransport,
    MultiprocessTransport,
    RecoveryLog,
    SupervisedTransport,
    resolve_executor,
)
from repro.graph.generators import gnp_random_graph, random_weighted_graph

# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor", worker=0)
        with pytest.raises(ValueError, match="worker"):
            FaultSpec("crash", worker=-1)
        with pytest.raises(ValueError, match="times"):
            FaultSpec("crash", worker=0, times=0)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec("delay", worker=0)

    def test_fire_counts_matching_dispatches_only(self):
        plan = FaultPlan(
            [FaultSpec("crash", worker=0, kernel="matching.*", step=1)]
        )
        assert plan.fire("debug.echo") == []  # non-matching: no count
        assert plan.fire("matching.machines") == []  # seen=0 < step
        fired = plan.fire("matching.direct_step")  # seen=1 == step
        assert [spec.kind for spec in fired] == ["crash"]
        assert plan.fire("matching.direct_step") == []  # window passed

    def test_times_window_and_reset(self):
        plan = FaultPlan([FaultSpec("corrupt", worker=1, step=0, times=2)])
        assert len(plan.fire("k")) == 1
        assert len(plan.fire("k")) == 1
        assert plan.fire("k") == []
        plan.reset()
        assert len(plan.fire("k")) == 1

    def test_dict_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec("delay", worker=1, kernel="mis.*", delay_s=0.5),
                FaultSpec("crash", worker=0, step=3, times=2),
            ]
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.specs == plan.specs
        with pytest.raises(ValueError, match="specs"):
            FaultPlan.from_dict({"nope": []})

    def test_random_plans_are_seed_reproducible(self):
        a = FaultPlan.random(42, workers=3)
        b = FaultPlan.random(42, workers=3)
        c = FaultPlan.random(43, workers=3)
        assert a.specs == b.specs
        assert a.specs != c.specs
        assert all(spec.worker < 3 for spec in a.specs)


class TestFaultPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = FaultPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(9) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(step_timeout_s=0.0)


class TestRecoveryLog:
    def test_counts_and_summary(self):
        log = RecoveryLog()
        log.record("failure", phase="p", worker=1, outcome="died")
        log.record("respawn", worker=1)
        log.record("retry", phase="p")
        summary = log.summary()
        assert summary["failures"] == 1
        assert summary["respawns"] == 1
        assert summary["retries"] == 1
        assert summary["degraded"] is False
        assert len(summary["events"]) == 3
        log.record("degrade", phase="p")
        assert log.degraded and log.summary()["degraded"] is True
        log.clear()
        assert log.events == [] and not log.degraded


# ---------------------------------------------------------------------------
# ChaosTransport: injected faults travel the real failure paths
# ---------------------------------------------------------------------------


def _outcomes_kinds(outcomes):
    return {worker: kind for worker, (kind, _) in outcomes.items()}


class TestChaosTransport:
    def test_requires_injection_capable_transport(self):
        with pytest.raises(TypeError, match="MultiprocessTransport"):
            ChaosTransport(LocalTransport(2), FaultPlan())

    def test_crash_fault_surfaces_as_worker_death(self):
        plan = FaultPlan([FaultSpec("crash", worker=1, step=0)])
        chaos = ChaosTransport(MultiprocessTransport(2), plan)
        outcomes = chaos.step_partial("debug.echo", [{"value": 0}] * 2)
        kinds = _outcomes_kinds(outcomes)
        assert kinds[0] == "ok" and kinds[1] == "died"
        chaos.close()

    def test_corrupt_fault_fails_the_crc_check(self):
        plan = FaultPlan([FaultSpec("corrupt", worker=0, step=0)])
        chaos = ChaosTransport(MultiprocessTransport(2), plan)
        try:
            outcomes = chaos.step_partial("debug.echo", [{"value": 0}] * 2)
            kinds = _outcomes_kinds(outcomes)
            assert kinds[0] == "corrupt" and kinds[1] == "ok"
            # A corrupt *reply* leaves the worker alive and the stream
            # frame-aligned: the next step works.
            outcomes = chaos.step_partial("debug.echo", [{"value": 1}] * 2)
            assert _outcomes_kinds(outcomes) == {0: "ok", 1: "ok"}
        finally:
            chaos.close()

    def test_delay_fault_trips_the_deadline(self):
        plan = FaultPlan(
            [FaultSpec("delay", worker=0, step=0, delay_s=5.0)]
        )
        chaos = ChaosTransport(MultiprocessTransport(2), plan)
        started = time.monotonic()
        try:
            outcomes = chaos.step_partial(
                "debug.echo", [{"value": 0}] * 2, deadline=0.5
            )
            kinds = _outcomes_kinds(outcomes)
            assert kinds[0] == "timeout" and kinds[1] == "ok"
        finally:
            chaos.close()
        assert time.monotonic() - started < 5.0

    def test_kernel_raise_fault_skips_dispatch(self):
        plan = FaultPlan([FaultSpec("kernel_raise", worker=1, step=0)])
        chaos = ChaosTransport(MultiprocessTransport(2), plan)
        try:
            outcomes = chaos.step_partial("debug.echo", [{"value": 0}] * 2)
            kinds = _outcomes_kinds(outcomes)
            assert kinds == {0: "ok", 1: "kernel_error"}
            assert "injected" in outcomes[1][1]
            # The target was never dispatched, so it is alive and serving.
            outcomes = chaos.step_partial("debug.echo", [{"value": 1}] * 2)
            assert _outcomes_kinds(outcomes) == {0: "ok", 1: "ok"}
        finally:
            chaos.close()

    def test_failfast_step_reports_structured_death(self):
        plan = FaultPlan([FaultSpec("crash", worker=0, step=0)])
        chaos = ChaosTransport(MultiprocessTransport(2), plan)
        with pytest.raises(DistExecutionError, match="died") as info:
            chaos.step("debug.echo", [{"value": 0}] * 2)
        assert info.value.worker_id == 0
        assert info.value.phase == "debug.echo"
        assert info.value.recovery == "transport-closed"


# ---------------------------------------------------------------------------
# SupervisedTransport: retry / respawn+replay / degradation
# ---------------------------------------------------------------------------

_COUNTER = {"session": "s", "add": 2}


def _supervised(policy=None, plan=None, workers=2):
    inner = MultiprocessTransport(workers)
    if plan is not None:
        inner = ChaosTransport(inner, plan)
    return SupervisedTransport(inner, policy)


class TestSupervisedTransport:
    def test_requires_recovery_capable_transport(self):
        with pytest.raises(TypeError, match="MultiprocessTransport"):
            SupervisedTransport(LocalTransport(2))

    def test_healthy_path_is_passthrough(self):
        sup = _supervised(FaultPolicy(step_timeout_s=30.0))
        try:
            sup.install("s", {"x": np.arange(3)})
            assert sup.step("debug.counter", [_COUNTER] * 2) == [2, 2]
            assert sup.step("debug.counter", [_COUNTER] * 2) == [4, 4]
            assert sup.recovery_log.events == []
            assert not sup.degraded
        finally:
            sup.close()

    def test_respawn_replays_stateful_journal(self):
        # Three counter steps build worker-resident state; killing a
        # worker and stepping again must reconstruct that state on the
        # respawned process from the journal — same totals as a worker
        # that never died.
        sup = _supervised(FaultPolicy(step_timeout_s=30.0))
        try:
            sup.install("s", {"x": np.arange(3)})
            for expected in (2, 4, 6):
                assert sup.step("debug.counter", [_COUNTER] * 2) == [
                    expected
                ] * 2
            sup._inner.kill_worker(1)
            assert sup.step("debug.counter", [_COUNTER] * 2) == [8, 8]
            respawns = [
                event
                for event in sup.recovery_log.events
                if event["kind"] == "respawn"
            ]
            assert len(respawns) == 1
            assert respawns[0]["worker"] == 1
            assert respawns[0]["replayed_steps"] == 3
            assert not sup.degraded
        finally:
            sup.close()

    def test_transient_kernel_raise_retries_in_place(self):
        plan = FaultPlan(
            [FaultSpec("kernel_raise", worker=0, kernel="debug.echo")]
        )
        sup = _supervised(FaultPolicy(step_timeout_s=30.0), plan)
        try:
            results = sup.step("debug.echo", [{"value": 9}] * 2)
            assert [r["worker_id"] for r in results] == [0, 1]
            log = sup.recovery_log
            assert log.count("failure") == 1
            assert log.count("retry") == 1
            assert log.count("respawn") == 0  # stateless: no respawn needed
        finally:
            sup.close()

    def test_timeout_respawns_and_recovers(self):
        sup = _supervised(FaultPolicy(step_timeout_s=1.0))
        started = time.monotonic()
        try:
            sup._inner.delay_next_receive(0, 5.0)
            results = sup.step("debug.echo", [{"value": 1}] * 2)
            assert [r["worker_id"] for r in results] == [0, 1]
            failures = [
                event
                for event in sup.recovery_log.events
                if event["kind"] == "failure"
            ]
            assert failures and failures[0]["outcome"] == "timeout"
            assert sup.recovery_log.count("respawn") == 1
        finally:
            sup.close()
        assert time.monotonic() - started < 15.0

    def test_budget_exhaustion_degrades_with_correct_results(self):
        # Worker 0 crashes on every dispatch; one respawn is allowed, so
        # supervision must degrade — and the degraded step must still
        # return exactly what healthy workers would have.
        plan = FaultPlan([FaultSpec("crash", worker=0, times=20)])
        sup = _supervised(
            FaultPolicy(max_respawns=1, step_timeout_s=30.0), plan
        )
        try:
            sup.install("s", {"x": np.arange(3)})
            assert sup.step("debug.counter", [_COUNTER] * 2) == [2, 2]
            assert sup.degraded
            assert sup.recovery_log.degraded
            # Degraded mode keeps serving the rest of the solve locally,
            # continuing from the replayed state.
            assert sup.step("debug.counter", [_COUNTER] * 2) == [4, 4]
        finally:
            sup.close()

    def test_degrade_disabled_raises_structured_error(self):
        plan = FaultPlan([FaultSpec("crash", worker=1, times=20)])
        sup = _supervised(
            FaultPolicy(
                max_retries=1, step_timeout_s=30.0, degrade=False
            ),
            plan,
        )
        with pytest.raises(DistExecutionError, match="gave up") as info:
            sup.step("debug.echo", [{"value": 0}] * 2)
        assert info.value.worker_id == 1
        assert info.value.phase == "debug.echo"
        assert info.value.attempts == 2  # 1 + max_retries
        assert info.value.recovery == "retries-exhausted"

    def test_corrupt_reply_on_stateful_kernel_respawns(self):
        # Corruption on a stateful step cannot be retried in place: the
        # worker *did* run the kernel (only the reply was damaged), so a
        # blind retry would double-apply the mutation.  Supervision must
        # rebuild from the journal instead.
        sup = _supervised(FaultPolicy(step_timeout_s=30.0))
        try:
            sup.install("s", {"x": np.arange(3)})
            assert sup.step("debug.counter", [_COUNTER] * 2) == [2, 2]
            sup._inner.corrupt_next_receive(1)
            assert sup.step("debug.counter", [_COUNTER] * 2) == [4, 4]
            assert sup.recovery_log.count("respawn") == 1
        finally:
            sup.close()


# ---------------------------------------------------------------------------
# chaos conformance matrix: parity under every fault kind
# ---------------------------------------------------------------------------

MPC_TASKS = [t for t in registry.tasks() if "mpc" in registry.backends(t)]
FAULT_KINDS_GRID = ["crash", "delay", "corrupt", "kernel_raise", "exhaust"]
_SEED = 5

_BASELINES = {}


def _graph_for(task):
    # Every task must actually *dispatch* distributed phases, or no
    # fault can fire: mis needs the dense regime (sparse graphs skip the
    # rank-prefix phases entirely), the rest dispatch at n=80, p=0.1.
    if task == "weighted_matching":
        return random_weighted_graph(80, 0.1, seed=7)
    if task == "mis":
        return gnp_random_graph(60, 0.5, seed=7)
    return gnp_random_graph(80, 0.1, seed=7)


def report_snapshot(report):
    """Everything that must match across executors/faults, as JSON data."""
    data = json.loads(report.to_json())
    data.pop("wall_time_s")
    data.pop("peak_rss_bytes")
    data.get("extras", {}).pop("executor", None)
    data.get("extras", {}).pop("faults", None)
    return data


def _baseline(task):
    if task not in _BASELINES:
        _BASELINES[task] = report_snapshot(
            solve(task, _graph_for(task), backend="mpc", seed=_SEED)
        )
    return _BASELINES[task]


def _grid_cell(kind):
    """(plan, policy) for one conformance cell.

    Every plan fires on the very first dispatched phase (``step=0``,
    ``kernel="*"``) so each task is hit regardless of which kernel it
    dispatches first; ``exhaust`` keeps crashing one worker until the
    single-respawn budget is gone, forcing mid-solve degradation.
    """
    policy = FaultPolicy(step_timeout_s=15.0)
    if kind == "crash":
        return FaultPlan([FaultSpec("crash", worker=1)]), policy
    if kind == "delay":
        return (
            FaultPlan([FaultSpec("delay", worker=1, delay_s=4.0)]),
            FaultPolicy(step_timeout_s=1.5),
        )
    if kind == "corrupt":
        return FaultPlan([FaultSpec("corrupt", worker=1)]), policy
    if kind == "kernel_raise":
        return FaultPlan([FaultSpec("kernel_raise", worker=1)]), policy
    if kind == "exhaust":
        return (
            FaultPlan([FaultSpec("crash", worker=0, times=8)]),
            FaultPolicy(max_respawns=1, step_timeout_s=15.0),
        )
    raise AssertionError(kind)


class TestChaosConformance:
    @pytest.mark.parametrize("kind", FAULT_KINDS_GRID)
    @pytest.mark.parametrize("task", MPC_TASKS)
    def test_recovered_run_matches_sequential(self, task, kind):
        plan, policy = _grid_cell(kind)
        report = solve(
            task,
            _graph_for(task),
            backend="mpc",
            seed=_SEED,
            executor="parallel",
            workers=2,
            fault_policy=policy,
            fault_plan=plan,
        )
        faults = report.extras["faults"]
        assert faults["events"], f"no recovery events recorded for {kind}"
        assert faults["failures"] >= 1
        if kind == "exhaust":
            assert faults["degraded"], "exhaustion must force degradation"
        else:
            assert not faults["degraded"], (
                f"{kind} should recover without degrading: "
                f"{faults['events']}"
            )
        assert report.extras["executor"]["supervised"] is True
        assert report_snapshot(report) == _baseline(task)

    def test_seeded_random_plan_recovers_with_parity(self):
        # The seeded generator is the fuzz surface: whatever mix of
        # faults it schedules, the run must still match the baseline.
        task = "fractional_matching"
        plan = FaultPlan.random(seed=1234, workers=2, faults=4)
        report = solve(
            task,
            _graph_for(task),
            backend="mpc",
            seed=_SEED,
            executor="parallel",
            workers=2,
            fault_policy=FaultPolicy(step_timeout_s=1.5),
            fault_plan=plan,
        )
        assert report_snapshot(report) == _baseline(task)


# ---------------------------------------------------------------------------
# façade / resolve_executor / CLI knobs
# ---------------------------------------------------------------------------


class TestFaultKnobs:
    def test_fault_policy_requires_parallel_executor(self):
        graph = gnp_random_graph(30, 0.1, seed=7)
        with pytest.raises(ValueError, match="parallel"):
            solve("mis", graph, backend="mpc", fault_policy=True)
        with pytest.raises(ValueError, match="parallel"):
            solve(
                "mis",
                graph,
                backend="mpc",
                executor="local",
                fault_plan={"specs": []},
            )

    def test_fault_policy_rejects_existing_executor_instance(self):
        with DistExecutor(LocalTransport(2), distributed=True) as executor:
            with pytest.raises(ValueError, match="rewrap"):
                resolve_executor(executor, fault_policy=True)

    def test_policy_and_plan_coercion(self):
        with pytest.raises(TypeError, match="fault_policy"):
            resolve_executor("parallel", fault_policy="yes")
        with pytest.raises(TypeError, match="fault_plan"):
            resolve_executor("parallel", fault_plan=[1, 2])
        executor, owned = resolve_executor(
            "parallel",
            fault_policy={"max_retries": 1},
            fault_plan={"specs": []},
        )
        try:
            assert owned
            assert isinstance(executor.transport, SupervisedTransport)
            assert executor.transport.policy.max_retries == 1
            assert executor.recovery_log is not None
        finally:
            executor.close()

    def test_plan_alone_implies_default_policy(self):
        graph = gnp_random_graph(40, 0.1, seed=7)
        report = solve(
            "fractional_matching",
            graph,
            backend="mpc",
            seed=3,
            executor="parallel",
            workers=2,
            fault_plan={"specs": []},
        )
        assert report.extras["executor"]["supervised"] is True
        assert report.extras["faults"]["events"] == []

    def test_unsupervised_parallel_has_no_faults_extras(self):
        graph = gnp_random_graph(40, 0.1, seed=7)
        report = solve(
            "fractional_matching",
            graph,
            backend="mpc",
            seed=3,
            executor="parallel",
            workers=2,
        )
        assert report.extras["executor"]["supervised"] is False
        assert "faults" not in report.extras

    def test_cli_chaos_flags(self, capsys):
        from repro.api.__main__ import main as cli_main

        plan = {
            "specs": [{"kind": "crash", "worker": 1, "kernel": "*"}]
        }
        rc = cli_main(
            [
                "solve",
                "--task",
                "fractional_matching",
                "--backend",
                "mpc",
                "--graph",
                "gnp:n=60,p=0.1",
                "--seed",
                "7",
                "--executor",
                "parallel",
                "--workers",
                "2",
                "--fault-policy",
                '{"step_timeout_s": 15}',
                "--fault-plan",
                json.dumps(plan),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["extras"]["executor"]["supervised"] is True
        kinds = {
            event["kind"]
            for event in payload["extras"]["faults"]["events"]
        }
        assert "failure" in kinds and "respawn" in kinds
