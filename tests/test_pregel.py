"""Unit tests for the vertex-centric engine and its programs."""

import math

import pytest

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
)
from repro.mpc.engine import PregelEngine
from repro.mpc.errors import MemoryExceededError
from repro.mpc.programs import luby_vertex_program, matching_vertex_program


class TestEngine:
    def test_single_superstep_halt(self):
        g = path_graph(5)
        engine = PregelEngine(g, seed=1)

        def compute(ctx, messages):
            ctx.state["seen"] = True
            ctx.vote_to_halt()

        result = engine.run(compute)
        assert result.supersteps == 1
        assert all(state["seen"] for state in result.states.values())

    def test_message_round_trip(self):
        g = Graph(2, [(0, 1)])
        engine = PregelEngine(g, seed=2)

        def compute(ctx, messages):
            if ctx.superstep == 0:
                ctx.send_to_neighbors(("ping", ctx.vertex))
            else:
                ctx.state["got"] = sorted(messages)
                ctx.vote_to_halt()

        result = engine.run(compute)
        assert result.states[0]["got"] == [("ping", 1)]
        assert result.states[1]["got"] == [("ping", 0)]

    def test_rounds_equal_supersteps(self):
        g = cycle_graph(6)
        engine = PregelEngine(g, seed=3)

        def compute(ctx, messages):
            if ctx.superstep >= 3:
                ctx.vote_to_halt()
            else:
                ctx.send_to_neighbors(("x", 0))

        result = engine.run(compute)
        assert result.rounds == result.supersteps

    def test_non_quiescing_program_raises(self):
        g = path_graph(3)
        engine = PregelEngine(g, seed=4)

        def chatty(ctx, messages):
            ctx.send_to_neighbors(("noise", 0))

        with pytest.raises(RuntimeError, match="quiesce"):
            engine.run(chatty, max_supersteps=10)

    def test_memory_enforcement(self):
        """A broadcast-storm program must blow the word budget loudly."""
        g = complete_graph(40)
        engine = PregelEngine(g, words_per_machine=30, seed=5)

        def storm(ctx, messages):
            if ctx.superstep == 0:
                ctx.send_to_neighbors(("flood", 0))
            else:
                ctx.vote_to_halt()

        with pytest.raises(MemoryExceededError):
            engine.run(storm)

    def test_deterministic_randomness(self):
        g = gnp_random_graph(30, 0.2, seed=6)
        a = luby_vertex_program(g, seed=9)
        b = luby_vertex_program(g, seed=9)
        assert a.mis == b.mis
        assert a.supersteps == b.supersteps


class TestLubyProgram:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_maximal_independent(self, seed):
        g = gnp_random_graph(80, 0.1, seed=seed)
        result = luby_vertex_program(g, seed=seed)
        assert is_maximal_independent_set(g, result.mis)

    def test_supersteps_logarithmic(self):
        g = gnp_random_graph(300, 0.05, seed=3)
        result = luby_vertex_program(g, seed=3)
        assert result.supersteps <= 8 * math.log2(300)

    def test_star(self):
        result = luby_vertex_program(star_graph(15), seed=4)
        assert is_maximal_independent_set(star_graph(15), result.mis)

    def test_isolated_vertices_included(self):
        g = Graph(6, [(0, 1)])
        result = luby_vertex_program(g, seed=5)
        assert {2, 3, 4, 5} <= result.mis

    def test_agrees_with_direct_luby_invariant(self):
        """The vertex program and the direct loop compute (different but)
        both-maximal independent sets of the same graph."""
        from repro.baselines.luby import luby_mis

        g = gnp_random_graph(100, 0.08, seed=6)
        program = luby_vertex_program(g, seed=6)
        direct = luby_mis(g, seed=6)
        assert is_maximal_independent_set(g, program.mis)
        assert is_maximal_independent_set(g, direct.mis)


class TestMatchingProgram:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_output_is_matching(self, seed):
        g = gnp_random_graph(80, 0.1, seed=seed)
        result = matching_vertex_program(g, seed=seed)
        assert is_matching(g, result.matching)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_output_is_maximal(self, seed):
        g = gnp_random_graph(60, 0.1, seed=seed)
        result = matching_vertex_program(g, seed=seed)
        assert is_maximal_matching(g, result.matching)

    def test_path(self):
        g = path_graph(10)
        result = matching_vertex_program(g, seed=3)
        assert is_maximal_matching(g, result.matching)

    def test_star_matches_once(self):
        result = matching_vertex_program(star_graph(9), seed=4)
        assert len(result.matching) == 1

    def test_complete_graph(self):
        g = complete_graph(20)
        result = matching_vertex_program(g, seed=5)
        assert is_maximal_matching(g, result.matching)
        assert len(result.matching) == 10  # maximal on K_even is perfect

    def test_supersteps_logarithmic(self):
        g = gnp_random_graph(200, 0.05, seed=6)
        result = matching_vertex_program(g, seed=6)
        assert result.supersteps <= 15 * math.log2(200)
