"""Unit tests for the integral matching pipeline (Theorem 1.2)."""

import pytest

from repro.baselines.blossom import maximum_matching
from repro.core.config import MatchingConfig
from repro.core.integral import mpc_maximum_matching
from repro.graph.generators import (
    gnp_random_graph,
    path_graph,
    planted_matching_graph,
    random_bipartite_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_matching, is_maximal_matching


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_output_is_matching(self, seed):
        g = gnp_random_graph(200, 0.06, seed=seed)
        result = mpc_maximum_matching(g, seed=seed)
        assert is_matching(g, result.matching)

    def test_output_is_maximal(self):
        """The Section 4.4.5 cleanup guarantees maximality of the union."""
        g = gnp_random_graph(150, 0.08, seed=3)
        result = mpc_maximum_matching(g, seed=3)
        assert is_maximal_matching(g, result.matching)

    def test_empty_graph(self):
        result = mpc_maximum_matching(Graph(0))
        assert result.matching == set()

    def test_edgeless(self):
        result = mpc_maximum_matching(Graph(6), seed=1)
        assert result.matching == set()

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        result = mpc_maximum_matching(g, seed=2)
        assert result.matching == {(0, 1)}

    def test_star(self):
        g = star_graph(25)
        result = mpc_maximum_matching(g, seed=4)
        assert len(result.matching) == 1


class TestApproximation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_theorem_1_2_ratio(self, seed):
        eps = 0.1
        g = gnp_random_graph(200, 0.06, seed=seed)
        config = MatchingConfig(epsilon=eps)
        result = mpc_maximum_matching(g, config=config, seed=seed)
        optimum = len(maximum_matching(g))
        assert len(result.matching) >= optimum / (2 + eps)

    def test_planted_matching_recovered_within_factor(self):
        g, planted = planted_matching_graph(100, noise_edges=200, seed=5)
        result = mpc_maximum_matching(g, seed=5)
        assert len(result.matching) >= len(planted) / 2.2

    def test_bipartite(self):
        g = random_bipartite_graph(80, 80, 0.06, seed=6)
        result = mpc_maximum_matching(g, seed=6)
        optimum = len(maximum_matching(g))
        assert len(result.matching) >= optimum / 2.2

    def test_path(self):
        g = path_graph(60)
        result = mpc_maximum_matching(g, seed=7)
        assert len(result.matching) >= 30 / 2.2


class TestProcess:
    def test_determinism(self):
        g = gnp_random_graph(120, 0.08, seed=8)
        a = mpc_maximum_matching(g, seed=9)
        b = mpc_maximum_matching(g, seed=9)
        assert a.matching == b.matching
        assert a.rounds == b.rounds

    def test_pass_accounting(self):
        g = gnp_random_graph(200, 0.06, seed=10)
        result = mpc_maximum_matching(g, seed=10)
        assert result.passes == len(result.per_pass_sizes)
        assert sum(result.per_pass_sizes) + result.cleanup_edges == len(
            result.matching
        )

    def test_rounds_positive(self):
        g = gnp_random_graph(100, 0.1, seed=11)
        assert mpc_maximum_matching(g, seed=11).rounds > 0
