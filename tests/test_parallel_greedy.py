"""Unit tests for the parallel randomized greedy MIS ([BFS12]/[FN18])."""

import math

import pytest

from repro.baselines.parallel_greedy import parallel_greedy_mis
from repro.core.greedy_mis import greedy_mis
from repro.graph.generators import (
    complete_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_maximal_independent_set


class TestEquivalenceWithSequential:
    """The defining property: identical output to sequential greedy under
    the same permutation (both resolve the same dependency DAG)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_sequential_exactly(self, seed):
        g = gnp_random_graph(120, 0.08, seed=seed)
        import random

        ranks = list(range(120))
        random.Random(seed).shuffle(ranks)
        order = sorted(g.vertices(), key=lambda v: ranks[v])
        sequential = greedy_mis(g, order)
        parallel = parallel_greedy_mis(g, ranks=ranks)
        assert parallel.mis == sequential

    def test_path_identity_permutation(self):
        g = path_graph(6)
        result = parallel_greedy_mis(g, ranks=list(range(6)))
        assert result.mis == {0, 2, 4}
        assert result.rounds <= 3


class TestRoundComplexity:
    def test_rounds_logarithmic(self):
        """[FN18]: Θ(log n) rounds w.h.p."""
        g = gnp_random_graph(1000, 0.02, seed=5)
        result = parallel_greedy_mis(g, seed=5)
        assert result.rounds <= 6 * math.log2(1000)

    def test_complete_graph_one_round(self):
        result = parallel_greedy_mis(complete_graph(30), seed=6)
        assert result.rounds == 1
        assert len(result.mis) == 1

    def test_decided_counts_sum_to_n(self):
        g = gnp_random_graph(100, 0.1, seed=7)
        result = parallel_greedy_mis(g, seed=7)
        assert sum(result.decided_per_round) == 100


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_maximal_independent(self, seed):
        g = gnp_random_graph(150, 0.06, seed=seed)
        result = parallel_greedy_mis(g, seed=seed)
        assert is_maximal_independent_set(g, result.mis)

    def test_star(self):
        result = parallel_greedy_mis(star_graph(20), seed=8)
        assert is_maximal_independent_set(star_graph(20), result.mis)

    def test_empty(self):
        result = parallel_greedy_mis(Graph(0))
        assert result.mis == set()
        assert result.rounds == 0

    def test_invalid_ranks_rejected(self):
        with pytest.raises(ValueError):
            parallel_greedy_mis(path_graph(3), ranks=[0, 0, 1])

    def test_determinism(self):
        g = gnp_random_graph(80, 0.1, seed=9)
        assert parallel_greedy_mis(g, seed=1).mis == parallel_greedy_mis(g, seed=1).mis
