"""Durability of every JSONL reader: truncated tails vs mid-file corruption.

Pins the bugfix where ``read_jsonl`` / ``read_stream_jsonl`` /
``read_batches_jsonl`` raised on a truncated trailing line — exactly what
a ``kill -9``-ed writer leaves — and lost every intact record before it.
The contract now: a partial *final* line warns
(:class:`TruncatedJSONLWarning`) and returns the intact prefix; a record
failing to parse *mid-file* is real corruption and raises
:class:`JSONLCorruptionError` carrying the 1-based line number.
"""

from __future__ import annotations

import json

import pytest

from repro.api import read_jsonl, solve
from repro.graph.generators import gnp_random_graph
from repro.stream.driver import read_stream_jsonl, solve_stream
from repro.stream.updates import (
    churn_batches,
    read_batches_jsonl,
    write_batches_jsonl,
)
from repro.utils.jsonl import (
    JSONLCorruptionError,
    TruncatedJSONLWarning,
    parse_jsonl_lines,
)


# ---------------------------------------------------------------------------
# the shared parser
# ---------------------------------------------------------------------------


class TestParseJsonlLines:
    def test_intact_input_round_trips(self):
        lines = ['{"a": 1}\n', '{"a": 2}\n']
        assert list(parse_jsonl_lines(lines, json.loads)) == [
            {"a": 1},
            {"a": 2},
        ]

    def test_blank_lines_are_skipped(self):
        lines = ['{"a": 1}\n', '\n', '   \n', '{"a": 2}\n']
        assert len(list(parse_jsonl_lines(lines, json.loads))) == 2

    def test_truncated_tail_warns_and_keeps_prefix(self):
        lines = ['{"a": 1}\n', '{"a": 2}\n', '{"a": 3, "tru']
        with pytest.warns(TruncatedJSONLWarning, match="line 3"):
            rows = list(parse_jsonl_lines(lines, json.loads))
        assert rows == [{"a": 1}, {"a": 2}]

    def test_midfile_corruption_raises_with_line_number(self):
        lines = ['{"a": 1}\n', 'garbage{{{\n', '{"a": 3}\n']
        iterator = parse_jsonl_lines(lines, json.loads)
        assert next(iterator) == {"a": 1}  # intact prefix still yielded
        with pytest.raises(JSONLCorruptionError) as excinfo:
            list(iterator)
        assert excinfo.value.line_number == 2
        assert "line 2" in str(excinfo.value)

    def test_corruption_error_chains_the_parse_error(self):
        lines = ['not json\n', '{"a": 1}\n']
        with pytest.raises(JSONLCorruptionError) as excinfo:
            list(parse_jsonl_lines(lines, json.loads))
        assert isinstance(excinfo.value.__cause__, json.JSONDecodeError)

    def test_empty_input_is_empty_without_warning(self, recwarn):
        assert list(parse_jsonl_lines([], json.loads)) == []
        assert not [
            w for w in recwarn if issubclass(w.category, TruncatedJSONLWarning)
        ]

    def test_single_truncated_line_warns_and_returns_nothing(self):
        with pytest.warns(TruncatedJSONLWarning):
            assert list(parse_jsonl_lines(['{"cut'], json.loads)) == []


# ---------------------------------------------------------------------------
# the three production readers
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def report_lines():
    graph = gnp_random_graph(24, 0.2, seed=3)
    return [
        solve("mis", graph, seed=seed).to_json() + "\n" for seed in (0, 1, 2)
    ]


def test_read_jsonl_tolerates_truncated_tail(tmp_path, report_lines):
    path = tmp_path / "sweep.jsonl"
    path.write_text("".join(report_lines) + report_lines[0][: len(report_lines[0]) // 2])
    with pytest.warns(TruncatedJSONLWarning):
        reports = read_jsonl(path)
    assert len(reports) == 3
    assert all(report.task == "mis" for report in reports)


def test_read_jsonl_raises_on_midfile_corruption(tmp_path, report_lines):
    path = tmp_path / "sweep.jsonl"
    path.write_text(report_lines[0] + "CORRUPT\n" + report_lines[1])
    with pytest.raises(JSONLCorruptionError) as excinfo:
        read_jsonl(path)
    assert excinfo.value.line_number == 2


def test_read_jsonl_intact_file_no_warning(tmp_path, report_lines, recwarn):
    path = tmp_path / "sweep.jsonl"
    path.write_text("".join(report_lines))
    assert len(read_jsonl(path)) == 3
    assert not [
        w for w in recwarn if issubclass(w.category, TruncatedJSONLWarning)
    ]


def test_read_stream_jsonl_tolerates_truncated_tail(tmp_path):
    graph = gnp_random_graph(32, 0.2, seed=5)
    batches = list(churn_batches(graph, epochs=2, churn_fraction=0.05, seed=1))
    report = solve_stream("mis", graph, batches, seed=0)
    lines = [report.to_json() + "\n", report.to_json() + "\n"]
    path = tmp_path / "streams.jsonl"
    path.write_text("".join(lines) + lines[0][:40])
    with pytest.warns(TruncatedJSONLWarning):
        reports = read_stream_jsonl(path)
    assert len(reports) == 2
    assert reports[0].to_json() == report.to_json()

    path.write_text(lines[0] + "{broken\n" + lines[1])
    with pytest.raises(JSONLCorruptionError) as excinfo:
        read_stream_jsonl(path)
    assert excinfo.value.line_number == 2


def test_read_batches_jsonl_tolerates_truncated_tail(tmp_path):
    graph = gnp_random_graph(32, 0.2, seed=5)
    batches = list(churn_batches(graph, epochs=3, churn_fraction=0.05, seed=1))
    path = tmp_path / "batches.jsonl"
    write_batches_jsonl(batches, path)
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    path.write_text("".join(lines) + lines[0][: len(lines[0]) // 2])
    with pytest.warns(TruncatedJSONLWarning):
        recovered = list(read_batches_jsonl(path))
    assert len(recovered) == 3
    assert all(
        (a.insertions == b.insertions).all() for a, b in zip(recovered, batches)
    )

    path.write_text(lines[0] + "xx\n" + "".join(lines[1:]))
    with pytest.raises(JSONLCorruptionError) as excinfo:
        list(read_batches_jsonl(path))
    assert excinfo.value.line_number == 2
