"""Unit tests for utils: rng, trace, validation."""

import pytest

from repro.utils.rng import RngStream, child_rng, make_rng, random_permutation
from repro.utils.trace import Trace, maybe_record
from repro.utils.validation import (
    require,
    require_epsilon,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng

    def test_none_seed_is_fixed_default(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_child_rng_label_independence(self):
        parent_a = make_rng(1)
        parent_b = make_rng(1)
        assert (
            child_rng(parent_a, "x").random() == child_rng(parent_b, "x").random()
        )
        parent_c = make_rng(1)
        assert (
            child_rng(parent_c, "x").random()
            != child_rng(make_rng(1), "y").random()
        )

    def test_stream_keyed_determinism(self):
        s1 = RngStream(9, namespace="t")
        s2 = RngStream(9, namespace="t")
        assert s1.uniform(0, 1, 4, 7) == s2.uniform(0, 1, 4, 7)
        assert s1.uniform(0, 1, 4, 7) != s1.uniform(0, 1, 4, 8)

    def test_stream_namespace_separation(self):
        a = RngStream(9, namespace="a").random(1)
        b = RngStream(9, namespace="b").random(1)
        assert a != b

    def test_random_permutation(self):
        perm = random_permutation(100, seed=3)
        assert sorted(perm) == list(range(100))
        assert perm != list(range(100))  # astronomically unlikely to be id


class TestTrace:
    def test_record_and_query(self):
        trace = Trace()
        trace.record("phase", index=1, edges=10)
        trace.record("phase", index=2, edges=5)
        trace.record("other", x=0)
        assert trace.count("phase") == 2
        assert trace.values("phase", "edges") == [10, 5]
        assert trace.last("phase")["index"] == 2
        assert trace.last("missing") is None
        assert len(trace) == 3
        assert len(trace.events()) == 3

    def test_maybe_record_none_is_noop(self):
        maybe_record(None, "anything", x=1)  # must not raise

    def test_event_getitem(self):
        trace = Trace()
        trace.record("k", value=42)
        assert trace.events("k")[0]["value"] == 42


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")

    def test_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(1.01, "p")

    def test_epsilon(self):
        require_epsilon(0.1)
        with pytest.raises(ValueError):
            require_epsilon(0.5)
        with pytest.raises(ValueError):
            require_epsilon(0.0)

    def test_type(self):
        require_type(3, int, "n")
        with pytest.raises(TypeError):
            require_type("3", int, "n")
