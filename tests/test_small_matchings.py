"""Unit tests for the Section 4.4.5 small-matching fallback."""

import pytest

from repro.core.small_matchings import small_matching_fallback
from repro.graph.generators import gnp_random_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.properties import is_maximal_matching, is_vertex_cover


class TestSmallMatchingFallback:
    def test_maximal_matching_and_cover(self):
        g = gnp_random_graph(120, 0.05, seed=1)
        result = small_matching_fallback(g, words_per_machine=8 * 120, seed=1)
        assert is_maximal_matching(g, result.matching)
        assert is_vertex_cover(g, result.cover)

    def test_small_matching_instance(self):
        """A few stars: tiny maximum matching, the regime 4.4.5 targets."""
        g = Graph(33)
        for center in (0, 11, 22):
            for leaf in range(1, 11):
                g.add_edge(center, center + leaf)
        result = small_matching_fallback(g, words_per_machine=8 * 33, seed=2)
        assert len(result.matching) == 3
        assert is_vertex_cover(g, result.cover)
        # Cover = endpoints of maximal matching: 2 per star vs optimal 1.
        assert len(result.cover) == 6

    def test_rounds_counted(self):
        g = gnp_random_graph(200, 0.2, seed=3)
        result = small_matching_fallback(g, words_per_machine=4 * 200, seed=3)
        assert result.rounds >= 1

    def test_edgeless(self):
        result = small_matching_fallback(Graph(4), words_per_machine=64, seed=4)
        assert result.matching == set()
        assert result.cover == set()
