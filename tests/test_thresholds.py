"""Unit tests for the threshold oracle."""

import pytest

from repro.core.thresholds import ThresholdOracle, fixed_oracle


class TestThresholdOracle:
    def test_range(self):
        oracle = ThresholdOracle(0.6, 0.8, seed=1)
        for v in range(50):
            for t in range(5):
                assert 0.6 <= oracle.threshold(v, t) <= 0.8

    def test_deterministic_coupling(self):
        """Two oracles with the same seed agree everywhere — the coupling
        property the Lemma 4.11 analysis needs."""
        a = ThresholdOracle(0.6, 0.8, seed=42)
        b = ThresholdOracle(0.6, 0.8, seed=42)
        assert all(
            a.threshold(v, t) == b.threshold(v, t)
            for v in range(20)
            for t in range(20)
        )

    def test_varies_over_vertices_and_iterations(self):
        oracle = ThresholdOracle(0.6, 0.8, seed=3)
        values = {oracle.threshold(v, t) for v in range(10) for t in range(10)}
        assert len(values) > 90  # collisions are measure-zero

    def test_fixed_oracle(self):
        oracle = fixed_oracle(0.75)
        assert oracle.threshold(0, 0) == 0.75
        assert oracle.threshold(99, 99) == 0.75

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            ThresholdOracle(0.8, 0.6, seed=1)

    def test_distribution_roughly_uniform(self):
        oracle = ThresholdOracle(0.0, 1.0, seed=5)
        draws = [oracle.threshold(v, 0) for v in range(2000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - 0.5) < 0.03
