"""Seeded parity pins: the non-MPC backend vectorization is output-preserving.

The fingerprints below were captured from the *pre-vectorization*
implementations (PR 5's starting point: pure-Python CONGESTED-CLIQUE
routing, per-vertex Pregel supersteps, set-based baselines).  The CSR
rewrite must reproduce every one of them byte-for-byte — solutions, round
counts, and communication accounting alike.  Regenerate deliberately with

    PYTHONPATH=src python tests/test_backend_parity.py

only when an *intentional* behavior change lands (and say so in the PR).

The module also property-tests the array-based substrate validation
(Lenzen routing loads, clique bandwidth) and the batched SHA-threshold
helpers against their scalar/dict-based references.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.api import solve
from repro.baselines.israeli_itai import israeli_itai_matching
from repro.baselines.luby import luby_mis
from repro.baselines.parallel_greedy import parallel_greedy_mis
from repro.graph.generators import gnp_random_graph


def _fingerprint(payload) -> str:
    """Stable hash of a JSON-shaped payload (float repr is exact)."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _solve_fingerprint(task, backend, n, p, graph_seed, solve_seed) -> str:
    graph = gnp_random_graph(n, p, seed=graph_seed)
    report = solve(task, graph, backend=backend, seed=solve_seed)
    return _fingerprint(
        {
            "task": report.task,
            "backend": report.backend,
            "solution": report.solution,
            "rounds": report.rounds,
            "max_machine_words": report.max_machine_words,
            "total_comm_words": report.total_comm_words,
            "extras": report.extras,
        }
    )


def _luby_fingerprint(n, p, graph_seed, seed) -> str:
    result = luby_mis(gnp_random_graph(n, p, seed=graph_seed), seed=seed)
    return _fingerprint({"mis": sorted(result.mis), "rounds": result.rounds})


def _israeli_itai_fingerprint(n, p, graph_seed, seed) -> str:
    result = israeli_itai_matching(
        gnp_random_graph(n, p, seed=graph_seed), seed=seed
    )
    return _fingerprint(
        {
            "matching": sorted([int(u), int(v)] for u, v in result.matching),
            "rounds": result.rounds,
        }
    )


def _parallel_greedy_fingerprint(n, p, graph_seed, seed) -> str:
    result = parallel_greedy_mis(gnp_random_graph(n, p, seed=graph_seed), seed=seed)
    return _fingerprint(
        {
            "mis": sorted(result.mis),
            "rounds": result.rounds,
            "decided_per_round": list(result.decided_per_round),
        }
    )


# (case name) -> (thunk args, pinned sha256).  REGENERATE-MARKER
SOLVE_CASES = {
    "mis/congested_clique/sparse": ("mis", "congested_clique", 300, 0.05, 11, 5),
    "mis/congested_clique/dense": ("mis", "congested_clique", 250, 0.3, 12, 6),
    "fractional/congested_clique": (
        "fractional_matching",
        "congested_clique",
        200,
        0.1,
        13,
        7,
    ),
    "mis/pregel": ("mis", "pregel", 300, 0.05, 14, 8),
    "matching/pregel": ("matching", "pregel", 300, 0.05, 15, 9),
    "fractional/mpc": ("fractional_matching", "mpc", 300, 0.1, 19, 13),
    "matching/mpc": ("matching", "mpc", 200, 0.1, 20, 14),
}

BASELINE_CASES = {
    "luby": (_luby_fingerprint, (250, 0.08, 16, 10)),
    "israeli_itai": (_israeli_itai_fingerprint, (250, 0.08, 17, 11)),
    "parallel_greedy": (_parallel_greedy_fingerprint, (250, 0.08, 18, 12)),
}

PINS = {
    "fractional/congested_clique": "39cafaa66fc21ef350646cceae45ed09d5e5a9c5cb0142a22a75716e764ca600",
    "fractional/mpc": "94564401bfdca5a758a92cc29c3f3a1fa9d810d4d0c178e4b684d898b427f4d7",
    "israeli_itai": "47eed39d4c0274eab55fd49bc7baa038b5f9bf392daff924d51e9025e5ce019c",
    "luby": "f77e102d6259b7e96d985e94f818c0e25b6a9ab7b1558000d56a391d3e5b927c",
    "matching/mpc": "600ca0bb1111ac7914bd9cf264091ba89508ae35a31bd3c087995f1e4a10cf90",
    "matching/pregel": "2150036e7c7f24af1f32535b5a3ca2680d0009e2a49772a5e4187763b7c7a689",
    "mis/congested_clique/dense": "32e519c87499c20714a7c5f8214d66f978682d2950d2e0df6b2a18c863e232e2",
    "mis/congested_clique/sparse": "569124578f790bece8ba77369c6de5116a22127c620bbeeaee31c53680c469ef",
    "mis/pregel": "cf0e631933eb1381de63f9c463be415227e2977c13be702caff1567919515f9e",
    "parallel_greedy": "42bce1427a0a72eb377430b9c258e4606edbfeffe4487b0b15813871d92595c8",
}


def _all_fingerprints():
    out = {}
    for name, args in SOLVE_CASES.items():
        out[name] = _solve_fingerprint(*args)
    for name, (fn, args) in BASELINE_CASES.items():
        out[name] = fn(*args)
    return out


@pytest.mark.parametrize("name", sorted(SOLVE_CASES) + sorted(BASELINE_CASES))
def test_pinned_output(name):
    if name in SOLVE_CASES:
        got = _solve_fingerprint(*SOLVE_CASES[name])
    else:
        fn, args = BASELINE_CASES[name]
        got = fn(*args)
    assert got == PINS[name], (
        f"{name}: output fingerprint changed — the vectorized backend no "
        "longer reproduces the pre-rewrite seeded output"
    )


# ---------------------------------------------------------------------------
# Array-based substrate validation vs the scalar/dict-based references
# ---------------------------------------------------------------------------

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congested_clique.model import CongestedClique
from repro.congested_clique.routing import lenzen_route, lenzen_route_arrays
from repro.core.thresholds import ThresholdOracle, fixed_oracle
from repro.mpc.errors import ProtocolError
from repro.utils.rng import RngStream

message_batches = st.integers(min_value=2, max_value=6).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=4 * n,
        ),
    )
)


@settings(max_examples=200, deadline=None)
@given(message_batches)
def test_lenzen_array_load_validation_matches_dict_reference(batch):
    """The bincount-validated array router accepts/rejects exactly the
    message multisets the dict-based reference does, and charges the same
    rounds when it accepts."""
    n, messages = batch
    reference = CongestedClique(n)
    vectorized = CongestedClique(n)
    senders = np.array([s for s, _ in messages], dtype=np.int64)
    receivers = np.array([r for _, r in messages], dtype=np.int64)
    try:
        lenzen_route(reference, [(s, r, None) for s, r in messages])
        ref_outcome = None
    except ProtocolError as error:
        ref_outcome = "sends" if "sends" in str(error) else "receives"
    try:
        lenzen_route_arrays(vectorized, senders, receivers)
        vec_outcome = None
    except ProtocolError as error:
        vec_outcome = "sends" if "sends" in str(error) else "receives"
    assert vec_outcome == ref_outcome
    if ref_outcome is None:
        assert vectorized.rounds == reference.rounds


@settings(max_examples=100, deadline=None)
@given(message_batches)
def test_clique_round_array_validation_matches_dict_reference(batch):
    n, messages = batch
    reference = CongestedClique(n)
    vectorized = CongestedClique(n)
    senders = np.array([s for s, _ in messages], dtype=np.int64)
    receivers = np.array([r for _, r in messages], dtype=np.int64)
    try:
        reference.round_of_messages([(s, r, 1) for s, r in messages])
        ref_ok = True
    except ProtocolError:
        ref_ok = False
    try:
        vectorized.round_of_messages_array(senders, receivers)
        vec_ok = True
    except ProtocolError:
        vec_ok = False
    assert vec_ok == ref_ok
    if ref_ok:
        assert vectorized.rounds == reference.rounds == 1


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    vertices=st.lists(
        st.integers(min_value=0, max_value=10**7), min_size=1, max_size=40
    ),
    iteration=st.integers(min_value=0, max_value=500),
)
def test_rng_batch_matches_scalar_draws(seed, vertices, iteration):
    """random_batch/uniform_batch are bit-for-bit the scalar methods."""
    stream = RngStream(seed, namespace="parity")
    scalar = [stream.random(v, iteration) for v in vertices]
    assert stream.random_batch(vertices, iteration).tolist() == scalar
    scalar_uniform = [stream.uniform(0.25, 0.75, v, iteration) for v in vertices]
    assert (
        stream.uniform_batch(0.25, 0.75, vertices, iteration).tolist()
        == scalar_uniform
    )


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    iteration=st.integers(min_value=0, max_value=200),
    estimates=st.lists(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
)
def test_oracle_crosses_batch_matches_scalar(seed, iteration, estimates):
    oracle = ThresholdOracle(0.6, 0.9, seed=seed)
    vertices = list(range(len(estimates)))
    scalar = [
        oracle.crosses(v, iteration, estimate)
        for v, estimate in zip(vertices, estimates)
    ]
    batch = oracle.crosses_batch(vertices, iteration, estimates)
    assert batch.tolist() == scalar
    thresholds = oracle.thresholds_batch(vertices, iteration)
    assert thresholds.tolist() == [oracle.threshold(v, iteration) for v in vertices]


def test_fixed_oracle_crosses_batch():
    oracle = fixed_oracle(0.5)
    batch = oracle.crosses_batch([1, 2, 3], 0, [0.4, 0.5, 0.6])
    assert batch.tolist() == [False, True, True]
    assert oracle.thresholds_batch([7, 8], 3).tolist() == [0.5, 0.5]


# ---------------------------------------------------------------------------
# Batched Pregel kernels vs the per-vertex programs
# ---------------------------------------------------------------------------

from repro.graph.generators import cycle_graph, path_graph, star_graph
from repro.graph.graph import Graph
from repro.mpc.programs import luby_vertex_program, matching_vertex_program

ENGINE_PARITY_GRAPHS = [
    gnp_random_graph(80, 0.1, seed=0),
    gnp_random_graph(150, 0.05, seed=3),
    gnp_random_graph(60, 0.3, seed=5),
    star_graph(15),
    path_graph(10),
    cycle_graph(9),
    Graph(6, [(0, 1)]),
    Graph(0),
    Graph(5),
]


@pytest.mark.parametrize("index", range(len(ENGINE_PARITY_GRAPHS)))
@pytest.mark.parametrize("seed", [0, 7])
def test_luby_batch_kernel_matches_per_vertex(index, seed):
    graph = ENGINE_PARITY_GRAPHS[index]
    reference = luby_vertex_program(graph, seed=seed, batched=False)
    batched = luby_vertex_program(graph, seed=seed, batched=True)
    assert batched.mis == reference.mis
    assert batched.supersteps == reference.supersteps
    assert batched.rounds == reference.rounds
    assert batched.max_machine_message_words == reference.max_machine_message_words
    assert batched.total_message_words == reference.total_message_words


@pytest.mark.parametrize("index", range(len(ENGINE_PARITY_GRAPHS)))
@pytest.mark.parametrize("seed", [0, 7])
def test_matching_batch_kernel_matches_per_vertex(index, seed):
    graph = ENGINE_PARITY_GRAPHS[index]
    reference = matching_vertex_program(graph, seed=seed, batched=False)
    batched = matching_vertex_program(graph, seed=seed, batched=True)
    assert batched.matching == reference.matching
    assert batched.supersteps == reference.supersteps
    assert batched.rounds == reference.rounds
    assert batched.max_machine_message_words == reference.max_machine_message_words
    assert batched.total_message_words == reference.total_message_words


def test_engine_memory_enforcement_matches_in_batch_mode():
    """A volume that blows the per-vertex word budget blows the batched one
    at the same superstep (K_20 draws exceed the sqrt-machine budget)."""
    from repro.graph.generators import complete_graph
    from repro.mpc.errors import MemoryExceededError

    graph = complete_graph(20)
    with pytest.raises(MemoryExceededError) as per_vertex:
        luby_vertex_program(graph, seed=0, batched=False)
    with pytest.raises(MemoryExceededError) as batched:
        luby_vertex_program(graph, seed=0, batched=True)
    assert str(batched.value) == str(per_vertex.value)


def test_neighbors_bulk_small_batch_fast_path():
    from repro.graph.csr import SMALL_GATHER_ROWS, CSRGraph

    graph = gnp_random_graph(300, 0.05, seed=2)
    csr = CSRGraph.from_graph(graph)
    for size in (1, 3, SMALL_GATHER_ROWS, SMALL_GATHER_ROWS + 1, 200):
        vertices = list(range(0, min(size * 3, 300), 3))[:size]
        expected = np.concatenate(
            [csr.neighbors(v) for v in vertices]
        ) if vertices else np.empty(0, dtype=np.int64)
        assert np.array_equal(csr.neighbors_bulk(vertices), expected)


def test_from_graph_mask_matches_filter_edges():
    from repro.graph.csr import CSRGraph

    graph = gnp_random_graph(120, 0.08, seed=9)
    csr = CSRGraph.from_graph(graph)
    rng_mask = np.arange(120) % 3 != 0
    assert CSRGraph.from_graph(graph, mask=rng_mask) == csr.filter_edges(rng_mask)
    assert CSRGraph.from_graph(graph, mask=np.flatnonzero(rng_mask)) == (
        csr.filter_edges(rng_mask)
    )


if __name__ == "__main__":
    print(json.dumps(_all_fingerprints(), indent=4, sort_keys=True))
