"""Property-based tests for the substrate primitives: sort, prefix sums,
rounding, thresholds, and the vertex-program engine."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.rounding import round_fractional_matching_detailed
from repro.core.thresholds import ThresholdOracle
from repro.graph.generators import gnm_random_graph
from repro.graph.graph import canonical_edge
from repro.graph.properties import is_matching
from repro.mpc.cluster import MPCCluster
from repro.mpc.sort import mpc_prefix_sums, mpc_sort
from repro.mpc.programs import luby_vertex_program, matching_vertex_program
from repro.graph.properties import is_maximal_independent_set, is_maximal_matching

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSortProperties:
    @_SETTINGS
    @given(
        data=st.lists(st.integers(-1000, 1000), max_size=400),
        machines=st.integers(2, 8),
        seed=st.integers(0, 1000),
    )
    def test_sort_is_sorted_permutation(self, data, machines, seed):
        cluster = MPCCluster(machines, words_per_machine=4 * len(data) + 64)
        shards = [data[i::machines] for i in range(machines)]
        outcome = mpc_sort(cluster, shards, seed=seed)
        assert outcome.flattened() == sorted(data)

    @_SETTINGS
    @given(
        data=st.lists(st.floats(0, 100, allow_nan=False), max_size=100),
        machines=st.integers(1, 5),
    )
    def test_prefix_sums_match_sequential(self, data, machines):
        cluster = MPCCluster(machines, words_per_machine=4 * len(data) + 64)
        shards = [data[i::machines] for i in range(machines)]
        result, _ = mpc_prefix_sums(cluster, shards)
        # Global prefix property: each shard continues where the prior ends.
        flat_input = [x for shard in shards for x in shard]
        flat_output = [x for shard in result for x in shard]
        expected = []
        acc = 0.0
        for x in flat_input:
            acc += x
            expected.append(acc)
        assert all(abs(a - b) < 1e-6 for a, b in zip(flat_output, expected))


class TestThresholdProperties:
    @_SETTINGS
    @given(
        lo=st.floats(0.0, 0.9),
        width=st.floats(0.0, 0.1),
        v=st.integers(0, 10**6),
        t=st.integers(0, 10**4),
        seed=st.integers(0, 1000),
    )
    def test_threshold_in_interval_and_stable(self, lo, width, v, t, seed):
        oracle = ThresholdOracle(lo, lo + width, seed=seed)
        value = oracle.threshold(v, t)
        assert lo <= value <= lo + width
        assert value == oracle.threshold(v, t)


class TestRoundingProperties:
    @_SETTINGS
    @given(seed=st.integers(0, 10**6), graph_seed=st.integers(0, 100))
    def test_rounding_on_uniform_weights(self, seed, graph_seed):
        graph = gnm_random_graph(30, 60, seed=graph_seed)
        # Uniform feasible weights: x_e = 1/deg_max.
        top = max(1, graph.max_degree())
        weights = {
            canonical_edge(u, v): 1.0 / top for u, v in graph.edges()
        }
        outcome = round_fractional_matching_detailed(
            graph, weights, set(range(30)), seed=seed
        )
        assert is_matching(graph, outcome.matching)
        assert outcome.proposals == len(outcome.matching) + outcome.collisions


class TestVertexProgramProperties:
    @_SETTINGS
    @given(graph_seed=st.integers(0, 200), seed=st.integers(0, 200))
    def test_luby_program_invariant(self, graph_seed, seed):
        graph = gnm_random_graph(24, 40, seed=graph_seed)
        result = luby_vertex_program(graph, seed=seed)
        assert is_maximal_independent_set(graph, result.mis)

    @_SETTINGS
    @given(graph_seed=st.integers(0, 200), seed=st.integers(0, 200))
    def test_matching_program_invariant(self, graph_seed, seed):
        graph = gnm_random_graph(24, 40, seed=graph_seed)
        result = matching_vertex_program(graph, seed=seed)
        assert is_maximal_matching(graph, result.matching)
