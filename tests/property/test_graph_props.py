"""Property-based tests for the graph substrate itself."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph, canonical_edge
from tests.property.strategies import graphs

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGraphProperties:
    @_SETTINGS
    @given(graph=graphs())
    def test_handshake_lemma(self, graph: Graph):
        assert sum(graph.degrees()) == 2 * graph.num_edges

    @_SETTINGS
    @given(graph=graphs())
    def test_edges_are_canonical_unique(self, graph: Graph):
        edges = list(graph.edges())
        assert len(edges) == len(set(edges)) == graph.num_edges
        assert all(u < v for u, v in edges)

    @_SETTINGS
    @given(graph=graphs())
    def test_copy_round_trip(self, graph: Graph):
        assert graph.copy() == graph

    @_SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 100))
    def test_induced_subgraph_edge_subset(self, graph: Graph, seed: int):
        import random

        rng = random.Random(seed)
        subset = [v for v in graph.vertices() if rng.random() < 0.5]
        induced = graph.induced_edges(subset)
        subset_set = set(subset)
        assert all(
            graph.has_edge(u, v) and u in subset_set and v in subset_set
            for u, v in induced
        )

    @_SETTINGS
    @given(graph=graphs())
    def test_isolate_removes_exactly_degree(self, graph: Graph):
        if graph.num_vertices == 0:
            return
        v = max(graph.vertices(), key=graph.degree)
        degree = graph.degree(v)
        before = graph.num_edges
        working = graph.copy()
        working.isolate(v)
        assert working.num_edges == before - degree

    @_SETTINGS
    @given(graph=graphs())
    def test_line_graph_vertex_count(self, graph: Graph):
        lg, order = graph.line_graph()
        assert lg.num_vertices == graph.num_edges == len(order)

    @_SETTINGS
    @given(graph=graphs())
    def test_components_partition_vertices(self, graph: Graph):
        components = graph.connected_components()
        all_vertices = sorted(v for comp in components for v in comp)
        assert all_vertices == list(graph.vertices())

    @_SETTINGS
    @given(u=st.integers(0, 1000), v=st.integers(0, 1000))
    def test_canonical_edge_symmetric(self, u: int, v: int):
        if u != v:
            assert canonical_edge(u, v) == canonical_edge(v, u)
            assert canonical_edge(u, v)[0] < canonical_edge(u, v)[1]
