"""Property tests for the dynamic-graph overlay and incremental maintainers.

Two families of properties:

* **overlay correctness** — streaming any batch sequence through
  :class:`DynamicGraph` and compacting is equivalent to rebuilding the
  CSR from a reference :class:`Graph` mutated edge-by-edge (the overlay
  is pure bookkeeping, never semantics);
* **maintainer conformance** — after every epoch of a random churn
  sequence, each maintainer's solution satisfies the task's ground-truth
  invariants (the same checkers the verify subsystem certifies), and the
  maintained quality agrees with a from-scratch re-solve within the
  differential agreement band.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph, canonical_edge
from repro.graph.properties import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_valid_fractional_matching,
    is_vertex_cover,
)
from repro.stream.dynamic import DynamicGraph
from repro.stream.maintain import make_maintainer
from repro.verify import agreement_band
from tests.property.strategies import graphs_with_batches

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Fewer examples for the maintainer properties: every epoch re-solves
# from scratch for the differential comparison.
_SLOW_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _mutate_reference(reference: Graph, batch) -> Graph:
    """Apply a batch to the set-based reference implementation."""
    grown = Graph(reference.num_vertices + batch.new_vertices)
    for u, v in reference.edges():
        grown.add_edge(u, v)
    for u, v in batch.deletions:
        if grown.has_edge(int(u), int(v)):
            grown.remove_edge(int(u), int(v))
    for u, v in batch.insertions:
        grown.add_edge(int(u), int(v))
    return grown


class TestOverlayEquivalence:
    @_SETTINGS
    @given(case=graphs_with_batches())
    def test_apply_then_compact_equals_rebuilt_csr(self, case):
        graph, batches = case
        dyn = DynamicGraph(graph)
        reference = graph
        for batch in batches:
            dyn.add_vertices(batch.new_vertices)
            dyn.apply_edges(batch.insertions, batch.deletions)
            reference = _mutate_reference(reference, batch)
            assert dyn.num_edges == reference.num_edges
            assert dyn.num_vertices == reference.num_vertices
        compacted = dyn.compact()
        assert compacted == CSRGraph.from_graph(reference)

    @_SETTINGS
    @given(case=graphs_with_batches())
    def test_snapshot_agrees_without_compaction(self, case):
        graph, batches = case
        dyn = DynamicGraph(graph, compact_fraction=None)
        reference = graph
        for batch in batches:
            dyn.add_vertices(batch.new_vertices)
            dyn.apply_edges(batch.insertions, batch.deletions)
            reference = _mutate_reference(reference, batch)
        assert dyn.snapshot() == CSRGraph.from_graph(reference)
        # Point queries agree with the reference on every vertex.
        for v in reference.vertices():
            assert dyn.degree(v) == reference.degree(v)
            assert set(dyn.neighbors(v).tolist()) == set(
                reference.neighbors_view(v)
            )

    @_SETTINGS
    @given(case=graphs_with_batches(), mid=st.integers(min_value=0, max_value=4))
    def test_compaction_point_is_irrelevant(self, case, mid):
        graph, batches = case
        straight = DynamicGraph(graph, compact_fraction=None)
        compacting = DynamicGraph(graph, compact_fraction=None)
        for index, batch in enumerate(batches):
            for dyn in (straight, compacting):
                dyn.add_vertices(batch.new_vertices)
                dyn.apply_edges(batch.insertions, batch.deletions)
            if index == mid:
                compacting.compact()
        assert straight.snapshot() == compacting.snapshot()


class TestMaintainerConformance:
    @_SLOW_SETTINGS
    @given(case=graphs_with_batches(max_vertices=20, max_batches=4))
    def test_mis_invariants_every_epoch(self, case):
        graph, batches = case
        maintainer = make_maintainer("mis", graph, backend="greedy", seed=0)
        maintainer.initialize()
        for batch in batches:
            maintainer.step(batch)
            current = maintainer.graph.to_graph()
            assert is_maximal_independent_set(
                current, set(maintainer.solution())
            )

    @_SLOW_SETTINGS
    @given(case=graphs_with_batches(max_vertices=20, max_batches=4))
    def test_matching_agrees_with_full_resolve(self, case):
        graph, batches = case
        maintainer = make_maintainer("matching", graph, backend="greedy", seed=0)
        maintainer.initialize()
        band = agreement_band("matching")
        for batch in batches:
            maintainer.step(batch)
            current = maintainer.graph.to_graph()
            edges = maintainer.matched_edges()
            assert is_maximal_matching(current, edges)
            # Differential: both are maximal matchings of the same
            # graph, so sizes differ by at most the (2 + O(eps)) band.
            fresh = make_maintainer("matching", current, backend="greedy", seed=1)
            fresh.initialize()
            low, high = sorted([max(len(edges), 1), max(fresh.size(), 1)])
            assert high <= band * low + 1e-6

    @_SLOW_SETTINGS
    @given(case=graphs_with_batches(max_vertices=20, max_batches=4))
    def test_vertex_cover_covers_every_epoch(self, case):
        graph, batches = case
        maintainer = make_maintainer(
            "vertex_cover", graph, backend="greedy", seed=0
        )
        maintainer.initialize()
        for batch in batches:
            maintainer.step(batch)
            current = maintainer.graph.to_graph()
            assert is_vertex_cover(current, set(maintainer.solution()))

    @_SLOW_SETTINGS
    @given(case=graphs_with_batches(max_vertices=20, max_batches=4))
    def test_fractional_feasible_and_saturated_every_epoch(self, case):
        graph, batches = case
        maintainer = make_maintainer(
            "fractional_matching", graph, backend="central", seed=0
        )
        maintainer.initialize()
        for batch in batches:
            maintainer.step(batch)
            current = maintainer.graph.to_graph()
            weights = {
                canonical_edge(int(u), int(v)): float(x)
                for u, v, x in maintainer.solution()
            }
            assert is_valid_fractional_matching(
                current, weights, tolerance=1e-6
            )
            # The quality invariant behind the band: every edge sees a
            # saturated endpoint, so W >= nu / 2.
            loads = maintainer.loads
            for u, v in current.edges():
                assert max(loads[u], loads[v]) >= 1.0 - 1e-6
