"""Property-based tests for the load-governance ladder (repro.govern).

The contract under test, on the adversarial (dense / heavy power-law)
graph regimes:

* **Rescue**: whenever an ungoverned run under a tight budget aborts
  with :class:`MemoryExceededError`, the same run with governance
  enabled completes, stays valid, respects the hard memory cap, and
  records the interventions it took.
* **Transparency**: on runs where governance never has to intervene, the
  governed solution is byte-identical to the ungoverned one — the
  governor observes but does not perturb.

Both are *implications*, so every drawn instance contributes to exactly
one of them; no instance is wasted on "the budget happened to fit".
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import solve
from repro.graph.graph import Graph
from repro.mpc.errors import MemoryExceededError
from tests.property.strategies import adversarial_graphs

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Tight enough to breach on the adversarial families at these sizes,
#: high enough that a maximal solution still fits one machine.
_BUDGET = 0.5


def _hard_words(n: int) -> int:
    from repro.mpc.spec import paper_memory_words

    return paper_memory_words(n, memory_factor=_BUDGET)


class TestGovernanceRescue:
    @_SETTINGS
    @given(graph=adversarial_graphs(), seed=st.integers(0, 100))
    def test_mis_breach_governed(self, graph: Graph, seed: int):
        self._check_task("mis", graph, seed)

    @_SETTINGS
    @given(graph=adversarial_graphs(), seed=st.integers(0, 100))
    def test_fractional_breach_governed(self, graph: Graph, seed: int):
        self._check_task("fractional_matching", graph, seed)

    @_SETTINGS
    @given(graph=adversarial_graphs(max_vertices=64), seed=st.integers(0, 100))
    def test_matching_breach_governed(self, graph: Graph, seed: int):
        self._check_task("matching", graph, seed)

    def _check_task(self, task: str, graph: Graph, seed: int) -> None:
        try:
            bare = solve(task, graph, backend="mpc", seed=seed, budget=_BUDGET)
            breached = False
        except MemoryExceededError:
            bare = None
            breached = True

        governed = solve(
            task, graph, backend="mpc", seed=seed, budget=_BUDGET,
            governance=True,
        )
        assert governed.valid
        record = governed.extras["governance"]

        if breached:
            # Rescue: the ladder must have fired (or degraded, with the
            # reason on record) and the governed peak must respect the cap.
            assert record["triggered"] or record["degraded"]
            if record["degraded"]:
                assert record["degraded_to"]
                assert record["reason"]
            elif governed.max_machine_words > 0:
                assert governed.max_machine_words <= _hard_words(graph.num_vertices)
        elif not record["triggered"]:
            # Transparency: nothing fired, so the solver ran the exact
            # ungoverned code path — solutions must match byte-for-byte.
            assert governed.solution == bare.solution
            assert record["events"] == []
            assert not record["degraded"]

    @_SETTINGS
    @given(graph=adversarial_graphs(max_vertices=64), seed=st.integers(0, 100))
    def test_governed_certificate(self, graph: Graph, seed: int):
        """Governed runs certify under the budget they were given."""
        from repro.verify.budgets import BudgetPolicy

        policy = BudgetPolicy(memory_factor=_BUDGET)
        report = solve(
            "fractional_matching", graph, backend="mpc", seed=seed,
            budget=_BUDGET, governance=True, verify=policy,
        )
        assert report.verified, report.verification

    @_SETTINGS
    @given(graph=adversarial_graphs(max_vertices=64), seed=st.integers(0, 100))
    def test_ungoverned_fails_loudly(self, graph: Graph, seed: int):
        """A breach without governance is an exception, never bad output.

        The dual of the rescue property: whatever the draw, the
        ungoverned run either finishes with a *valid* solution or raises
        MemoryExceededError naming the machine and the context — there
        is no silent third outcome.
        """
        try:
            report = solve(
                "mis", graph, backend="mpc", seed=seed, budget=_BUDGET
            )
        except MemoryExceededError as breach:
            assert breach.used_words > breach.capacity_words
            assert breach.context
        else:
            assert report.valid


class TestGovernedQualityBands:
    @_SETTINGS
    @given(graph=adversarial_graphs(max_vertices=64), seed=st.integers(0, 100))
    def test_matching_maximality_survives_governance(
        self, graph: Graph, seed: int
    ):
        """Chunked/degraded runs still produce *maximal* matchings.

        Maximality is the load-bearing guarantee behind the 2-approx
        band; if sequential sub-batches dropped it, quality would decay
        silently under pressure — exactly what governance must not do.
        """
        from repro.graph.properties import is_maximal_matching

        report = solve(
            "matching", graph, backend="mpc", seed=seed, budget=_BUDGET,
            governance=True,
        )
        matched = [(edge[0], edge[1]) for edge in report.solution]
        assert is_maximal_matching(graph, matched)

    @_SETTINGS
    @given(graph=adversarial_graphs(max_vertices=48), seed=st.integers(0, 50))
    def test_governed_mis_is_maximal_independent(
        self, graph: Graph, seed: int
    ):
        from repro.graph.properties import is_maximal_independent_set

        report = solve(
            "mis", graph, backend="mpc", seed=seed, budget=_BUDGET,
            governance=True,
        )
        assert is_maximal_independent_set(graph, set(report.solution))
