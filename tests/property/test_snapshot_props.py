"""Property tests for the serve snapshot/restore crash contract.

The invariant under test: snapshotting a :class:`TenantSession` at *any*
epoch boundary and restoring from the JSON round-trip, then finishing the
stream, must land on exactly the state of a session that processed the
whole stream uninterrupted — same solution, same per-epoch certificates,
same graph, same cursor.  Adversarial batch sequences (deletes of absent
edges, vertex growth, empty batches) come from the shared
:func:`~tests.property.strategies.graphs_with_batches` strategy.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.session import TenantSession
from repro.stream.maintain import MAINTAINERS

from .strategies import graphs_with_batches

TASKS = sorted(MAINTAINERS)

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run_session(task, graph, batches, *, snapshot_at=None, seed=3):
    """Stream the batches through a session; optionally snapshot/restore
    (through a real JSON round-trip) after ``snapshot_at`` epochs."""
    session = TenantSession("tenant", task, graph, seed=seed, verify=True)
    session.initialize()
    for seq, batch in enumerate(batches, start=1):
        session.process(batch, seq)
        if snapshot_at is not None and seq == snapshot_at:
            payload = json.loads(json.dumps(session.snapshot_payload()))
            session = TenantSession.restore(payload)
            # Replay the full prefix: everything at or below the cursor
            # must dedup, which is what the crash-recovery client does.
            for replay_seq, replay_batch in enumerate(batches, start=1):
                if replay_seq <= seq:
                    assert session.process(replay_batch, replay_seq) is None
    return session


@given(
    data=graphs_with_batches(max_vertices=20, max_batches=4, max_edits=10),
    task=st.sampled_from(TASKS),
    cut=st.integers(min_value=0, max_value=4),
)
@_SETTINGS
def test_restore_at_any_epoch_matches_uninterrupted(data, task, cut):
    graph, batches = data
    snapshot_at = min(cut, len(batches))
    baseline = _run_session(task, graph, batches)
    restored = _run_session(task, graph, batches, snapshot_at=snapshot_at)

    assert restored.maintainer.solution() == baseline.maintainer.solution()
    assert restored.quality() == baseline.quality()
    assert restored.processed_seq == baseline.processed_seq
    assert [r.verification for r in restored.records] == [
        r.verification for r in baseline.records
    ]
    base_graph = baseline.maintainer.graph.compact()
    rest_graph = restored.maintainer.graph.compact()
    assert rest_graph.num_vertices == base_graph.num_vertices
    assert rest_graph.edge_list() == base_graph.edge_list()
    assert restored.certificate() == baseline.certificate()


@given(
    data=graphs_with_batches(max_vertices=16, max_batches=3, max_edits=8),
    task=st.sampled_from(TASKS),
)
@_SETTINGS
def test_snapshot_payload_is_json_stable(data, task):
    """snapshot(restore(snapshot(s))) == snapshot(s), byte for byte."""
    graph, batches = data
    session = TenantSession("tenant", task, graph, seed=11, verify=True)
    session.initialize()
    for seq, batch in enumerate(batches, start=1):
        session.process(batch, seq)
    payload = session.snapshot_payload()
    text = json.dumps(payload, sort_keys=True)
    restored = TenantSession.restore(json.loads(text))
    second = restored.snapshot_payload()
    # The restore counter is the one legitimate difference.
    assert second["counters"].pop("restores") == payload["counters"].get(
        "restores", 0
    ) + 1
    payload["counters"].pop("restores", None)
    second["counters"]["restores"] = 0
    payload["counters"]["restores"] = 0
    assert json.dumps(second, sort_keys=True) == json.dumps(
        payload, sort_keys=True
    )
