"""Byte-parity of every CSR kernel on MMapCSRGraph vs CSRGraph.

The out-of-core graph (:class:`repro.ooc.MMapCSRGraph`) overrides the
chunk-sensitive kernels of :class:`repro.graph.csr.CSRGraph` with
residency-bounded implementations.  Chunking only reorders exact
integer/boolean work, so every kernel must return byte-identical arrays
(same values, same dtype) for any graph and any chunk geometry — that
equivalence is what lets the solvers run unchanged on either
representation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property.strategies import csr_disk_pairs, mask_of

SETTINGS = settings(max_examples=60, deadline=None)


def assert_same_array(a: np.ndarray, b: np.ndarray) -> None:
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    assert np.array_equal(a, b)


@st.composite
def pairs_with_masks(draw, max_vertices: int = 40):
    ram, mapped, tmp = draw(csr_disk_pairs(max_vertices=max_vertices))
    n = ram.num_vertices
    subset = (
        draw(st.sets(st.integers(min_value=0, max_value=n - 1))) if n else set()
    )
    return ram, mapped, tmp, mask_of(subset, n)


@SETTINGS
@given(pairs_with_masks())
def test_structure_and_scalar_kernels(example):
    ram, mapped, _tmp, mask = example
    assert mapped == ram  # CSRGraph equality: same n, same arrays
    assert mapped.num_vertices == ram.num_vertices
    assert mapped.num_edges == ram.num_edges
    assert mapped.max_degree() == ram.max_degree()
    assert mapped.max_degree(mask) == ram.max_degree(mask)
    assert_same_array(np.asarray(mapped.indptr), np.asarray(ram.indptr))
    assert_same_array(np.asarray(mapped.indices), np.asarray(ram.indices))
    assert_same_array(mapped.src, ram.src)
    for v in range(min(ram.num_vertices, 8)):
        assert mapped.degree(v) == ram.degree(v)
        assert_same_array(
            np.asarray(mapped.neighbors(v)), np.asarray(ram.neighbors(v))
        )


@SETTINGS
@given(pairs_with_masks())
def test_degree_and_edge_kernels(example):
    ram, mapped, _tmp, mask = example
    assert_same_array(mapped.degrees(), ram.degrees())
    assert_same_array(mapped.degrees(mask), ram.degrees(mask))
    assert mapped.count_edges_within(mask) == ram.count_edges_within(mask)
    assert_same_array(mapped.edge_array(), ram.edge_array())
    assert_same_array(mapped.induced_edges(mask), ram.induced_edges(mask))
    assert_same_array(
        mapped.threshold_filter(2, mask), ram.threshold_filter(2, mask)
    )


@SETTINGS
@given(pairs_with_masks())
def test_adjacency_chunks_cover_slots_in_order(example):
    ram, mapped, _tmp, _mask = example
    pieces = list(mapped.adjacency_chunks())
    src = (
        np.concatenate([s for s, _ in pieces])
        if pieces
        else np.empty(0, dtype=np.int64)
    )
    dst = (
        np.concatenate([d for _, d in pieces])
        if pieces
        else np.empty(0, dtype=np.int64)
    )
    assert_same_array(src.astype(np.int64, copy=False), ram.src)
    assert_same_array(
        dst.astype(np.int64, copy=False), np.asarray(ram.indices)
    )


@SETTINGS
@given(pairs_with_masks())
def test_subgraph_kernels(example):
    ram, mapped, _tmp, mask = example
    assert mapped.filter_edges(mask) == ram.filter_edges(mask)
    sub_ram, kept_ram = ram.induced_subgraph(mask)
    sub_mapped, kept_mapped = mapped.induced_subgraph(mask)
    assert sub_mapped == sub_ram
    assert_same_array(kept_mapped, kept_ram)


@SETTINGS
@given(pairs_with_masks(), st.integers(min_value=0, max_value=2**31))
def test_removal_and_gather_kernels(example, seed):
    ram, mapped, _tmp, mask = example
    n = ram.num_vertices
    rng = np.random.default_rng(seed)
    chosen = np.flatnonzero(rng.random(n) < 0.3) if n else np.empty(0, np.int64)
    assert_same_array(
        mapped.neighbors_bulk(chosen), ram.neighbors_bulk(chosen)
    )
    mask_ram = mask.copy()
    mask_mapped = mask.copy()
    ram.remove_closed_neighborhoods(chosen, mask=mask_ram)
    mapped.remove_closed_neighborhoods(chosen, mask=mask_mapped)
    assert_same_array(mask_mapped, mask_ram)


@SETTINGS
@given(pairs_with_masks(), st.integers(min_value=0, max_value=2**31))
def test_sample_vertices_parity(example, seed):
    ram, mapped, _tmp, _mask = example
    assert_same_array(
        mapped.sample_vertices(0.4, seed), ram.sample_vertices(0.4, seed)
    )
