"""Shared hypothesis strategies for the library's graph types.

Before this module every property-test file grew its own ``@st.composite``
graph generator; these are the consolidated versions, parameterized the
same way everywhere:

* :func:`graphs` — random ``G(n, m)`` as the set-based :class:`Graph`
  (optionally guaranteeing edges for algorithms that need them);
* :func:`csr_graphs` — the same distribution as :class:`CSRGraph`;
* :func:`weighted_graphs` — random structure with positive uniform
  weights;
* :func:`graphs_with_subsets` — a graph plus a random vertex subset, for
  the mask/induced-subgraph parity checks;
* :func:`csr_disk_pairs` — a :class:`CSRGraph` round-tripped through the
  out-of-core on-disk format, paired with its
  :class:`~repro.ooc.MMapCSRGraph` view under random chunk sizes, for
  the mmap-vs-RAM kernel byte-parity suite;
* :func:`dense_pair_graphs` — small graphs drawn by sampling explicit
  vertex pairs (hits duplicate-edge and near-clique shapes ``G(n, m)``
  rarely produces);
* :func:`adversarial_graphs` — the memory-hostile regimes the governance
  ladder exists for: dense ``G(n, 1/2)`` and heavy power-law
  (Barabási–Albert with high attachment), where tight per-machine
  budgets breach without intervention;
* :func:`graphs_with_batches` — a graph plus a random
  :class:`~repro.stream.updates.EdgeBatch` sequence (inserts, deletes of
  present and absent edges, vertex growth), for the dynamic-overlay and
  maintainer properties.

``mask_of`` converts a subset to the boolean mask shape the CSR kernels
take.
"""

from __future__ import annotations

import tempfile

import numpy as np
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert,
    gnm_random_graph,
    gnp_random_graph,
)
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.ooc import MMapCSRGraph, save_csr
from repro.utils.rng import make_rng


@st.composite
def graphs(draw, max_vertices: int = 40, min_vertices: int = 0, min_edges: int = 0):
    """A random ``G(n, m)`` graph of arbitrary density."""
    n = draw(st.integers(min_value=max(min_vertices, 0), max_value=max_vertices))
    max_edges = n * (n - 1) // 2
    m = draw(st.integers(min_value=min(min_edges, max_edges), max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return gnm_random_graph(n, m, seed=seed)


@st.composite
def dense_pair_graphs(draw, max_vertices: int = 24, max_edges: int = 60):
    """A small graph built from explicitly sampled vertex pairs.

    Unlike :func:`graphs`, duplicate pairs are drawn and collapsed, so
    shrinking finds minimal edge lists quickly.
    """
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), max_size=max_edges))
        if possible
        else []
    )
    return Graph(n, edges)


@st.composite
def adversarial_graphs(draw, min_vertices: int = 24, max_vertices: int = 96):
    """Graphs from the memory-hostile regimes of the governance suite.

    Either dense ``G(n, 1/2)`` (quadratic edge volume: every scatter and
    broadcast is hot) or heavy power-law (Barabási–Albert, attachment
    drawn up to 8: hub-induced subgraphs concentrate on few machines).
    Sizes start at ``min_vertices`` because tiny instances never stress
    a budget — the point of the strategy is load, not shrinkability.
    """
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    if draw(st.booleans()):
        return gnp_random_graph(n, 0.5, seed=seed)
    attachment = draw(st.integers(min_value=4, max_value=8))
    return barabasi_albert(max(n, attachment + 1), attachment, seed=seed)


@st.composite
def csr_graphs(draw, max_vertices: int = 40):
    """The :func:`graphs` distribution, converted to :class:`CSRGraph`."""
    return CSRGraph.from_graph(draw(graphs(max_vertices=max_vertices)))


@st.composite
def csr_disk_pairs(draw, max_vertices: int = 40):
    """A CSR graph and its on-disk mmap view, plus the backing tempdir.

    The returned :class:`tempfile.TemporaryDirectory` must stay
    referenced for as long as the mmap graph is used (its finalizer
    deletes the files); tests just keep the 3-tuple together.  Chunk
    sizes are drawn down to 1 so the chunked kernels cross chunk
    boundaries in every shape hypothesis can find.
    """
    ram = draw(csr_graphs(max_vertices=max_vertices))
    tmp = tempfile.TemporaryDirectory(prefix="repro-ooc-")
    save_csr(ram, tmp.name)
    chunk_slots = draw(st.integers(min_value=1, max_value=len(ram.indices) + 1))
    chunk_rows = draw(st.integers(min_value=1, max_value=ram.num_vertices + 1))
    mapped = MMapCSRGraph(
        tmp.name, chunk_slots=chunk_slots, chunk_rows=chunk_rows
    )
    return ram, mapped, tmp


@st.composite
def weighted_graphs(draw, max_vertices: int = 24, max_weight: float = 100.0):
    """Random structure with positive uniform edge weights."""
    graph = draw(graphs(max_vertices=max_vertices, min_vertices=2, min_edges=1))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = make_rng(seed)
    weighted = WeightedGraph(graph.num_vertices)
    for u, v in graph.edges():
        weighted.add_edge(u, v, rng.uniform(0.1, max_weight))
    return weighted


@st.composite
def graphs_with_subsets(draw, max_vertices: int = 24):
    """A graph plus a random vertex subset (possibly empty)."""
    graph = draw(dense_pair_graphs(max_vertices=max_vertices))
    n = graph.num_vertices
    subset = (
        draw(st.sets(st.integers(min_value=0, max_value=n - 1))) if n else set()
    )
    return graph, subset


def mask_of(subset, n: int) -> np.ndarray:
    """A boolean mask over ``n`` vertices with ``subset`` set."""
    mask = np.zeros(n, dtype=bool)
    mask[list(subset)] = True
    return mask


@st.composite
def graphs_with_batches(
    draw,
    max_vertices: int = 24,
    max_batches: int = 5,
    max_edits: int = 12,
    max_growth: int = 3,
):
    """A graph plus a random batch sequence to stream onto it.

    Batches mix insertions and deletions of arbitrary pairs (present or
    not — the overlay must treat the misses as no-ops) and occasionally
    append vertices; endpoints may target grown vertices of earlier
    batches.
    """
    from repro.stream.updates import EdgeBatch

    graph = draw(dense_pair_graphs(max_vertices=max_vertices))
    n = graph.num_vertices
    batches = []
    for index in range(draw(st.integers(min_value=0, max_value=max_batches))):
        growth = draw(st.integers(min_value=0, max_value=max_growth))
        n += growth
        pair = st.tuples(
            st.integers(min_value=0, max_value=max(n - 1, 0)),
            st.integers(min_value=0, max_value=max(n - 1, 0)),
        ).filter(lambda uv: uv[0] != uv[1])
        insertions = draw(st.lists(pair, max_size=max_edits)) if n >= 2 else []
        deletions = draw(st.lists(pair, max_size=max_edits)) if n >= 2 else []
        batches.append(
            EdgeBatch.make(
                insertions=insertions,
                deletions=deletions,
                new_vertices=growth,
                timestamp=float(index),
            )
        )
    return graph, batches
