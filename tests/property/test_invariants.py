"""Property-based tests (hypothesis) for the core invariants.

Random graphs of random shapes, random seeds — every algorithm must hold
its defining invariant on all of them.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.blossom import maximum_matching_size
from repro.baselines.filtering import filtering_maximal_matching
from repro.baselines.luby import luby_mis
from repro.core.central import central_fractional_matching
from repro.core.greedy_mis import randomized_greedy_mis
from repro.core.integral import mpc_maximum_matching
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.core.rounding import round_fractional_matching
from repro.graph.graph import Graph
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_vertex_cover,
)
from tests.property.strategies import graphs

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_graphs(max_vertices: int = 48):
    """A random G(n, m) graph with arbitrary density."""
    return graphs(max_vertices=max_vertices)


class TestMISInvariants:
    @_SETTINGS
    @given(graph=random_graphs(), seed=st.integers(0, 1000))
    def test_greedy_mis_maximal(self, graph: Graph, seed: int):
        assert is_maximal_independent_set(
            graph, randomized_greedy_mis(graph, seed=seed)
        )

    @_SETTINGS
    @given(graph=random_graphs(), seed=st.integers(0, 1000))
    def test_mpc_mis_maximal(self, graph: Graph, seed: int):
        assert is_maximal_independent_set(graph, mis_mpc(graph, seed=seed).mis)

    @_SETTINGS
    @given(graph=random_graphs(), seed=st.integers(0, 1000))
    def test_luby_maximal(self, graph: Graph, seed: int):
        assert is_maximal_independent_set(graph, luby_mis(graph, seed=seed).mis)


class TestMatchingInvariants:
    @_SETTINGS
    @given(graph=random_graphs(), seed=st.integers(0, 1000))
    def test_fractional_valid_and_cover_covers(self, graph: Graph, seed: int):
        result = mpc_fractional_matching(graph, seed=seed)
        assert result.matching.is_valid()
        assert is_vertex_cover(graph, result.vertex_cover)

    @_SETTINGS
    @given(graph=random_graphs(), seed=st.integers(0, 1000))
    def test_central_valid(self, graph: Graph, seed: int):
        result = central_fractional_matching(
            graph, epsilon=0.1, randomized_thresholds=True, seed=seed
        )
        assert result.matching.is_valid()
        assert is_vertex_cover(graph, result.vertex_cover)

    @_SETTINGS
    @given(graph=random_graphs(max_vertices=36), seed=st.integers(0, 1000))
    def test_integral_matching_valid_and_half_opt(self, graph: Graph, seed: int):
        result = mpc_maximum_matching(graph, seed=seed)
        assert is_matching(graph, result.matching)
        assert is_maximal_matching(graph, result.matching)
        assert 2 * len(result.matching) >= maximum_matching_size(graph)

    @_SETTINGS
    @given(graph=random_graphs(), seed=st.integers(0, 1000))
    def test_rounding_always_matching(self, graph: Graph, seed: int):
        fractional = mpc_fractional_matching(graph, seed=seed)
        rounded = round_fractional_matching(
            graph,
            fractional.matching.weights,
            fractional.rounding_candidates(0.1),
            seed=seed,
        )
        assert is_matching(graph, rounded)

    @_SETTINGS
    @given(graph=random_graphs(), seed=st.integers(0, 1000))
    def test_filtering_maximal(self, graph: Graph, seed: int):
        result = filtering_maximal_matching(
            graph, words_per_machine=8 * max(8, graph.num_vertices), seed=seed
        )
        assert is_maximal_matching(graph, result.matching)
