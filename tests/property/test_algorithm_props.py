"""Property-based tests for higher-level algorithmic laws.

These encode the *mathematical relationships* between the paper's objects
(LP duality sandwiches, reduction correctness, improvement monotonicity)
rather than per-algorithm invariants.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.blossom import maximum_matching_size
from repro.core.augmenting import improve_matching
from repro.core.central import central_fractional_matching
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.weighted_matching import mpc_weighted_matching, weight_classes
from repro.graph.graph import Graph
from repro.graph.properties import is_matching
from tests.property.strategies import weighted_graphs
from tests.property.strategies import graphs as any_graphs

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def graphs(max_vertices: int = 40):
    """Graphs with at least one edge (the laws below divide by optima)."""
    return any_graphs(max_vertices=max_vertices, min_vertices=2, min_edges=1)


class TestDualitySandwich:
    @_SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 500))
    def test_weak_duality_mpc(self, graph: Graph, seed: int):
        """Fractional matching weight <= integral max matching's VC bound:
        weight <= |VC*| <= |cover|; and weight <= |M*| * 2 always."""
        result = mpc_fractional_matching(graph, seed=seed)
        assert result.weight <= len(result.vertex_cover) + 1e-6
        optimum = maximum_matching_size(graph)
        assert result.weight <= 2 * optimum + 1e-6

    @_SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 500))
    def test_central_weight_within_lp_bounds(self, graph: Graph, seed: int):
        result = central_fractional_matching(graph, epsilon=0.1, seed=seed)
        optimum = maximum_matching_size(graph)
        # Lemma 4.1 lower bound and LP upper bound.
        assert result.weight >= optimum / 2.5 - 1e-9
        assert result.weight <= 2 * optimum + 1e-6


class TestAugmentingMonotonicity:
    @_SETTINGS
    @given(
        graph=graphs(),
        seed=st.integers(0, 500),
        path_length=st.sampled_from([1, 3, 5]),
    )
    def test_improvement_never_shrinks_and_stays_valid(
        self, graph: Graph, seed: int, path_length: int
    ):
        from repro.baselines.greedy import greedy_maximal_matching

        start = greedy_maximal_matching(graph, seed=seed)
        outcome = improve_matching(graph, start, path_length, seed=seed)
        assert is_matching(graph, outcome.matching)
        assert len(outcome.matching) >= len(start)

    @_SETTINGS
    @given(graph=graphs(max_vertices=24), seed=st.integers(0, 200))
    def test_length_one_elimination_gives_maximal(self, graph: Graph, seed: int):
        """Eliminating length-1 augmenting paths from scratch = maximality."""
        outcome = improve_matching(graph, set(), max_path_length=1, seed=seed)
        from repro.graph.properties import is_maximal_matching

        assert is_maximal_matching(graph, outcome.matching)


class TestWeightClassLaws:
    @_SETTINGS
    @given(wgraph=weighted_graphs(), eps=st.sampled_from([0.05, 0.1, 0.3]))
    def test_classes_partition_kept_edges(self, wgraph: WeightedGraph, eps):
        classes = weight_classes(wgraph, epsilon=eps)
        flattened = [e for cls in classes for e in cls]
        assert len(flattened) == len(set(flattened))  # no duplicates
        kept = set(flattened)
        w_max = wgraph.max_weight()
        floor = eps * w_max / max(1, wgraph.num_vertices)
        for u, v, w in wgraph.edges():
            assert ((u, v) in kept) == (w >= floor)

    @_SETTINGS
    @given(wgraph=weighted_graphs(), seed=st.integers(0, 200))
    def test_weighted_matching_weight_consistency(self, wgraph, seed):
        result = mpc_weighted_matching(wgraph, epsilon=0.1, seed=seed)
        assert is_matching(wgraph.structure, result.matching)
        assert abs(result.weight - wgraph.matching_weight(result.matching)) < 1e-9
        # Never worse than half the single heaviest edge.
        if wgraph.num_edges:
            assert result.weight >= wgraph.max_weight() / 2 - 1e-9
