"""Unit tests for the w.h.p. audit harness."""

import pytest

from repro.analysis.whp_audit import AuditReport, audit, run_e14_whp_audit


class TestAudit:
    def test_counts_failures(self):
        report = audit("parity", lambda seed: seed % 2 == 0, seeds=range(10))
        assert report.trials == 10
        assert report.failures == 5
        assert report.failure_rate == 0.5
        assert report.failing_seeds == [1, 3, 5, 7, 9]

    def test_all_pass(self):
        report = audit("always", lambda seed: True, seeds=range(5))
        assert report.failures == 0
        assert report.failure_rate == 0.0

    def test_empty_seeds(self):
        report = audit("none", lambda seed: False, seeds=[])
        assert report.failure_rate == 0.0

    def test_exceptions_propagate(self):
        def boom(seed: int) -> bool:
            raise RuntimeError("bug, not randomness")

        with pytest.raises(RuntimeError):
            audit("boom", boom, seeds=[1])


class TestE14:
    def test_invariants_never_fail_on_small_sweep(self):
        rows = run_e14_whp_audit(n=96, trials=6)
        assert len(rows) == 3
        for row in rows:
            assert row["failures"] == 0, row
