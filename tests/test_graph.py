"""Unit tests for the Graph data structure."""

import pytest

from repro.graph.graph import Graph, canonical_edge


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_from_edges_sizes_to_max_endpoint(self):
        g = Graph.from_edges([(0, 3), (1, 2)])
        assert g.num_vertices == 4
        assert g.num_edges == 2

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_out_of_range_edge_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.neighbors(0) == frozenset({1, 2, 3})
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2)])
        assert g.max_degree() == 2
        assert Graph(0).max_degree() == 0
        assert Graph(5).max_degree() == 0

    def test_has_edge_symmetric(self):
        g = Graph(3, [(0, 2)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_edges_canonical_and_sorted(self):
        g = Graph(4, [(3, 1), (2, 0)])
        assert g.edge_list() == [(0, 2), (1, 3)]

    def test_degrees_sequence(self):
        g = Graph(3, [(0, 1)])
        assert g.degrees() == [1, 1, 0]


class TestMutation:
    def test_remove_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        g.remove_edge(1, 0)
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        g = Graph(3)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_isolate(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        g.isolate(0)
        assert g.degree(0) == 0
        assert g.num_edges == 1

    def test_remove_closed_neighborhood(self):
        g = Graph(5, [(0, 1), (0, 2), (1, 3), (2, 4)])
        removed = g.remove_closed_neighborhood(0)
        assert removed == {0, 1, 2}
        assert g.num_edges == 0

    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2
        assert g != h


class TestStructural:
    def test_induced_subgraph_relabels(self):
        g = Graph(5, [(1, 3), (3, 4), (1, 4), (0, 2)])
        sub = g.induced_subgraph([1, 3, 4])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # the triangle survives

    def test_induced_edges_keeps_labels(self):
        g = Graph(5, [(1, 3), (3, 4), (0, 1)])
        assert sorted(g.induced_edges([1, 3, 4])) == [(1, 3), (3, 4)]

    def test_line_graph_of_path(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        lg, order = g.line_graph()
        assert lg.num_vertices == 3
        assert lg.num_edges == 2  # line graph of P4 is P3
        assert order == [(0, 1), (1, 2), (2, 3)]

    def test_line_graph_of_star(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        lg, _ = g.line_graph()
        assert lg.num_edges == 3  # line graph of a 3-star is a triangle

    def test_connected_components(self):
        g = Graph(6, [(0, 1), (1, 2), (4, 5)])
        components = g.connected_components()
        assert [0, 1, 2] in components
        assert [3] in components
        assert [4, 5] in components

    def test_canonical_edge(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_equality(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(1))
