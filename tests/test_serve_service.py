"""Integration tests for the asyncio service and its wire protocol.

An in-process service on a loopback socket (fast, deterministic) covers
the protocol surface: open/ingest/query/flush/snapshot/report/shutdown,
error responses, idempotent re-open, and restore-at-boot.  One
subprocess test performs the real thing — ``SIGKILL`` mid-stream,
restart on the snapshot directory, certified convergence — in miniature
(the full two-tenant matrix runs as ``python -m repro.serve --check`` in
CI).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import ServeClient, ServeConfig, ServeError, ServeService
from repro.stream.updates import make_scenario


class ServiceHarness:
    """Run a ServeService on a private event loop in a daemon thread."""

    def __init__(self, **config) -> None:
        self.service = ServeService(ServeConfig(**config))
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.service.start())
        self._ready.set()
        self._loop.run_until_complete(self.service.serve_until_stopped())

    def __enter__(self) -> "ServiceHarness":
        self._thread.start()
        assert self._ready.wait(timeout=60)
        return self

    @property
    def port(self) -> int:
        return self.service.port

    def __exit__(self, *exc_info) -> None:
        if not self.service._stopping.is_set():
            try:
                with ServeClient(port=self.port) as client:
                    client.shutdown()
            except (ServeError, OSError):
                pass
        self._thread.join(timeout=30)


@pytest.fixture(scope="module")
def scenario():
    return make_scenario("churn", n=48, epochs=6, churn_fraction=0.05, seed=17)


def _open(client, tenant, task, graph, **kwargs):
    return client.open(
        tenant,
        task,
        n=graph.num_vertices,
        edges=graph.edge_list(),
        seed=5,
        **kwargs,
    )


def test_protocol_end_to_end(scenario):
    graph, batches = scenario
    with ServiceHarness() as harness:
        with ServeClient(port=harness.port) as client:
            ping = client.ping()
            assert ping["service"] == "repro.serve" and ping["tenants"] == []

            opened = _open(client, "alice", "mis", graph, verify=True)
            assert opened["existing"] is False
            assert opened["initial"]["size"] > 0

            for seq, batch in enumerate(batches, start=1):
                response = client.ingest("alice", batch, seq=seq, sync=True)
                assert response["outcome"] in ("queued", "coalesced")
                assert response["record"]["verification"]["ok"] is True

            status = client.status("alice")
            assert status["epochs"] == len(batches)
            assert status["processed_seq"] == len(batches)
            assert client.quality("alice") == float(status["size"])
            assert client.certificate("alice")["ok"] is True
            assert len(client.epochs("alice")) == len(batches)
            assert len(client.epochs("alice", last=2)) == 2

            report = client.report()
            assert report.ok and report.tenant("alice").epochs


def test_async_ingest_drains_via_worker(scenario):
    graph, batches = scenario
    with ServiceHarness() as harness:
        with ServeClient(port=harness.port) as client:
            _open(client, "bob", "matching", graph)
            for seq, batch in enumerate(batches, start=1):
                response = client.ingest("bob", batch, seq=seq)
                assert response["outcome"] in ("queued", "coalesced")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.status("bob")["epochs"] == len(batches):
                    break
                time.sleep(0.02)
            status = client.status("bob")
            assert status["epochs"] == len(batches)
            assert status["queue_depth"] == 0


def test_error_responses_do_not_kill_the_connection(scenario):
    graph, _ = scenario
    with ServiceHarness() as harness:
        with ServeClient(port=harness.port) as client:
            with pytest.raises(ServeError, match="unknown tenant"):
                client.status("ghost")
            with pytest.raises(ServeError, match="unknown op"):
                client.request({"op": "frobnicate"})
            with pytest.raises(ServeError, match="task"):
                client.request({"op": "open", "tenant": "x"})
            # Raw garbage on the wire gets an error line back, too.
            client._file.write(b"not json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            # The same connection still serves real requests.
            assert client.ping()["ok"] is True

            _open(client, "alice", "mis", graph)
            with pytest.raises(ServeError, match="already serves"):
                client.open("alice", "matching")
            reopened = client.open("alice", "mis")
            assert reopened["existing"] is True


def test_tenant_isolation(scenario):
    graph, batches = scenario
    with ServiceHarness() as harness:
        with ServeClient(port=harness.port) as client:
            _open(client, "alice", "mis", graph)
            _open(client, "bob", "mis", graph)
            client.ingest("alice", batches[0], seq=1, sync=True)
            assert client.status("alice")["epochs"] == 1
            assert client.status("bob")["epochs"] == 0


def test_snapshot_and_restore_at_boot(tmp_path, scenario):
    graph, batches = scenario
    snap = str(tmp_path / "snap")
    with ServiceHarness(snapshot_dir=snap, snapshot_every=2) as harness:
        with ServeClient(port=harness.port) as client:
            _open(client, "alice", "mis", graph, verify=True)
            for seq, batch in enumerate(batches[:4], start=1):
                client.ingest("alice", batch, seq=seq, sync=True)
            solution = client.solution("alice")
            client.shutdown()  # graceful: snapshots everything
    assert os.path.exists(os.path.join(snap, "alice.snapshot.json"))

    with ServiceHarness(snapshot_dir=snap, snapshot_every=2) as harness:
        with ServeClient(port=harness.port) as client:
            assert client.ping()["tenants"] == ["alice"]
            status = client.status("alice")
            assert status["epochs"] == 4 and status["processed_seq"] == 4
            assert client.solution("alice") == solution
            # Replay dedups, the stream continues.
            assert (
                client.ingest("alice", batches[0], seq=1, sync=True)["outcome"]
                == "duplicate"
            )
            response = client.ingest("alice", batches[4], seq=5, sync=True)
            assert response["outcome"] == "queued"
            assert client.status("alice")["epochs"] == 5


def test_explicit_snapshot_op(tmp_path, scenario):
    graph, _ = scenario
    snap = str(tmp_path / "snap")
    with ServiceHarness(snapshot_dir=snap) as harness:
        with ServeClient(port=harness.port) as client:
            _open(client, "alice", "mis", graph)
            _open(client, "bob", "matching", graph)
            assert client.snapshot("alice")["written"] == 1
            assert client.snapshot()["written"] == 2
    names = sorted(os.listdir(snap))
    assert names == ["alice.snapshot.json", "bob.snapshot.json"]


def test_snapshot_op_without_dir_errors(scenario):
    graph, _ = scenario
    with ServiceHarness() as harness:
        with ServeClient(port=harness.port) as client:
            _open(client, "alice", "mis", graph)
            with pytest.raises(ServeError, match="snapshot-dir"):
                client.snapshot("alice")


def test_backpressure_shed_is_explicit(scenario):
    graph, batches = scenario
    with ServiceHarness(max_queue=1, max_pending_edits=1) as harness:
        with ServeClient(port=harness.port) as client:
            _open(client, "alice", "mis", graph)
            # Async ingests pile onto a queue capped at one edit; the
            # single-threaded drive guarantees at least one rejection.
            outcomes = [
                client.ingest("alice", batch, seq=seq)["outcome"]
                for seq, batch in enumerate(batches, start=1)
            ]
            shed = [o for o in outcomes if o == "shed"]
            assert shed, outcomes
            response = client.ingest("alice", batches[0], seq=99)
            if response["outcome"] == "shed":
                assert response["retry"] is True


def _wait_for_port(port_file, process, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        assert process.poll() is None, "service subprocess died"
        try:
            text = open(port_file).read().strip()
        except OSError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise AssertionError("service never published its port")


@pytest.mark.skipif(sys.platform == "win32", reason="SIGKILL semantics")
def test_kill9_restart_converges(tmp_path, scenario):
    """The crash contract against a real process: SIGKILL mid-stream,
    restart on the snapshot dir, full replay -> same certified solution
    as an uninterrupted in-process run."""
    graph, batches = scenario
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    snap = str(tmp_path / "snap")
    port_file = str(tmp_path / "port")

    def spawn():
        if os.path.exists(port_file):
            os.unlink(port_file)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--port",
                "0",
                "--port-file",
                port_file,
                "--snapshot-dir",
                snap,
                "--snapshot-every",
                "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    # Reference: uninterrupted, in-process.
    with ServiceHarness() as harness:
        with ServeClient(port=harness.port) as client:
            _open(client, "alice", "mis", graph, verify=True)
            for seq, batch in enumerate(batches, start=1):
                client.ingest("alice", batch, seq=seq, sync=True)
            expected_solution = client.solution("alice")
            expected_verifications = [
                record["verification"] for record in client.epochs("alice")
            ]

    server = spawn()
    try:
        port = _wait_for_port(port_file, server)
        with ServeClient(port=port) as client:
            _open(client, "alice", "mis", graph, verify=True)
            for seq, batch in enumerate(batches[:3], start=1):
                client.ingest("alice", batch, seq=seq, sync=True)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()

    server = spawn()
    try:
        port = _wait_for_port(port_file, server)
        with ServeClient(port=port) as client:
            assert client.ping()["tenants"] == ["alice"]
            duplicates = 0
            for seq, batch in enumerate(batches, start=1):
                response = client.ingest("alice", batch, seq=seq, sync=True)
                duplicates += response["outcome"] == "duplicate"
            assert duplicates >= 1  # the snapshotted prefix was skipped
            assert client.solution("alice") == expected_solution
            verifications = [
                record["verification"] for record in client.epochs("alice")
            ]
            assert verifications == expected_verifications
            report = client.report()
            assert report.ok
            assert report.tenant("alice").counters["restores"] >= 1
            client.shutdown()
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
