"""Unit tests for graph workload statistics."""

import pytest

from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.statistics import (
    average_clustering,
    clustering_coefficient,
    component_size_distribution,
    degree_histogram,
    degree_statistics,
    loglog_degree_bound,
)


class TestDegreeStatistics:
    def test_regular_graph(self):
        stats = degree_statistics(cycle_graph(10))
        assert stats.minimum == stats.maximum == 2
        assert stats.mean == 2.0
        assert stats.variance == 0.0
        assert stats.isolated_vertices == 0

    def test_star(self):
        stats = degree_statistics(star_graph(9))
        assert stats.maximum == 9
        assert stats.minimum == 1
        assert stats.median == 1
        assert stats.skew_ratio > 4

    def test_empty(self):
        stats = degree_statistics(Graph(0))
        assert stats.mean == 0.0
        assert stats.skew_ratio == 0.0

    def test_isolated_counted(self):
        g = Graph(5, [(0, 1)])
        assert degree_statistics(g).isolated_vertices == 3

    def test_power_law_skew_exceeds_gnp(self):
        """The generator families land in their intended regimes."""
        ba = barabasi_albert(600, 3, seed=1)
        er = gnp_random_graph(600, 6.0 / 599, seed=1)
        assert degree_statistics(ba).skew_ratio > degree_statistics(er).skew_ratio


class TestHistogram:
    def test_histogram_sums_to_n(self):
        g = gnp_random_graph(50, 0.1, seed=2)
        histogram = degree_histogram(g)
        assert sum(histogram.values()) == 50

    def test_path_histogram(self):
        assert degree_histogram(path_graph(4)) == {1: 2, 2: 2}


class TestLogLogBound:
    def test_small_degree_floor(self):
        assert loglog_degree_bound(path_graph(3)) == 1.0

    def test_monotone_in_degree(self):
        small = loglog_degree_bound(star_graph(16))
        large = loglog_degree_bound(star_graph(65536))
        assert small < large
        assert large == 4.0  # log2 log2 65536


class TestClustering:
    def test_triangle(self):
        g = complete_graph(3)
        assert clustering_coefficient(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_path_has_no_triangles(self):
        assert average_clustering(path_graph(6)) == 0.0

    def test_leaf_coefficient_zero(self):
        assert clustering_coefficient(star_graph(5), 1) == 0.0

    def test_sampled_clustering_close_to_full(self):
        g = gnp_random_graph(200, 0.1, seed=3)
        full = average_clustering(g)
        sampled = average_clustering(g, sample=100, seed=4)
        assert abs(full - sampled) < 0.1


class TestComponents:
    def test_distribution(self):
        g = Graph(7, [(0, 1), (1, 2), (3, 4)])
        assert component_size_distribution(g) == [3, 2, 1, 1]

    def test_connected(self):
        assert component_size_distribution(cycle_graph(5)) == [5]
