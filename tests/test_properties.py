"""Unit tests for the solution validators."""

import pytest

from repro.graph.graph import Graph
from repro.graph.properties import (
    fractional_matching_weight,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_valid_fractional_matching,
    is_vertex_cover,
    matching_vertices,
    vertex_loads,
)


@pytest.fixture
def square() -> Graph:
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


class TestIndependentSet:
    def test_empty_is_independent(self, square):
        assert is_independent_set(square, set())

    def test_diagonal_is_independent(self, square):
        assert is_independent_set(square, {0, 2})

    def test_adjacent_not_independent(self, square):
        assert not is_independent_set(square, {0, 1})

    def test_maximality(self, square):
        assert is_maximal_independent_set(square, {0, 2})
        assert not is_maximal_independent_set(square, {0})
        assert not is_maximal_independent_set(square, {0, 1})

    def test_isolated_vertices_must_be_included(self):
        g = Graph(3, [(0, 1)])
        assert not is_maximal_independent_set(g, {0})
        assert is_maximal_independent_set(g, {0, 2})


class TestMatching:
    def test_empty_matching(self, square):
        assert is_matching(square, set())

    def test_valid_matching(self, square):
        assert is_matching(square, {(0, 1), (2, 3)})

    def test_shared_vertex_rejected(self, square):
        assert not is_matching(square, {(0, 1), (1, 2)})

    def test_non_edge_rejected(self, square):
        assert not is_matching(square, {(0, 2)})

    def test_maximal_matching(self, square):
        assert is_maximal_matching(square, {(0, 1), (2, 3)})
        assert not is_maximal_matching(square, {(0, 1)})

    def test_single_edge_maximal_on_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert is_maximal_matching(g, {(0, 1)})

    def test_matching_vertices(self):
        assert matching_vertices({(0, 1), (2, 3)}) == {0, 1, 2, 3}


class TestVertexCover:
    def test_full_cover(self, square):
        assert is_vertex_cover(square, {0, 1, 2, 3})

    def test_minimum_cover(self, square):
        assert is_vertex_cover(square, {0, 2})
        assert is_vertex_cover(square, {1, 3})

    def test_non_cover(self, square):
        assert not is_vertex_cover(square, {0})

    def test_empty_cover_on_edgeless(self):
        assert is_vertex_cover(Graph(5), set())


class TestFractional:
    def test_valid(self, square):
        weights = {(0, 1): 0.5, (1, 2): 0.5, (2, 3): 0.5, (0, 3): 0.5}
        assert is_valid_fractional_matching(square, weights)
        assert fractional_matching_weight(weights) == pytest.approx(2.0)

    def test_overloaded_vertex(self, square):
        weights = {(0, 1): 0.8, (1, 2): 0.8}
        assert not is_valid_fractional_matching(square, weights)

    def test_negative_weight(self, square):
        assert not is_valid_fractional_matching(square, {(0, 1): -0.1})

    def test_non_edge(self, square):
        assert not is_valid_fractional_matching(square, {(0, 2): 0.1})

    def test_vertex_loads(self, square):
        loads = vertex_loads({(0, 1): 0.25, (1, 2): 0.5})
        assert loads[1] == pytest.approx(0.75)
        assert loads[0] == pytest.approx(0.25)
