"""Unit tests for the solution validators.

The fixed cases pin known answers; the property-based classes at the end
(driven by the shared strategies in ``tests/property/strategies.py``)
check the validators against independently-constructed witnesses on
random graphs — a greedily built maximal object must pass, and a
perturbed one must fail.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.graph.graph import Graph, canonical_edge
from repro.graph.properties import (
    fractional_matching_weight,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_valid_fractional_matching,
    is_vertex_cover,
    matching_vertices,
    vertex_loads,
)
from tests.property.strategies import dense_pair_graphs, graphs

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def greedy_mis_witness(graph: Graph) -> set:
    """Smallest-vertex-first maximal independent set."""
    chosen: set = set()
    blocked: set = set()
    for v in graph.vertices():
        if v not in blocked:
            chosen.add(v)
            blocked.add(v)
            blocked |= graph.neighbors_view(v)
    return chosen


def greedy_matching_witness(graph: Graph) -> set:
    """First-fit maximal matching over the canonical edge order."""
    matched: set = set()
    matching: set = set()
    for u, v in graph.edge_list():
        if u not in matched and v not in matched:
            matching.add((u, v))
            matched.add(u)
            matched.add(v)
    return matching


@pytest.fixture
def square() -> Graph:
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


class TestIndependentSet:
    def test_empty_is_independent(self, square):
        assert is_independent_set(square, set())

    def test_diagonal_is_independent(self, square):
        assert is_independent_set(square, {0, 2})

    def test_adjacent_not_independent(self, square):
        assert not is_independent_set(square, {0, 1})

    def test_maximality(self, square):
        assert is_maximal_independent_set(square, {0, 2})
        assert not is_maximal_independent_set(square, {0})
        assert not is_maximal_independent_set(square, {0, 1})

    def test_isolated_vertices_must_be_included(self):
        g = Graph(3, [(0, 1)])
        assert not is_maximal_independent_set(g, {0})
        assert is_maximal_independent_set(g, {0, 2})


class TestMatching:
    def test_empty_matching(self, square):
        assert is_matching(square, set())

    def test_valid_matching(self, square):
        assert is_matching(square, {(0, 1), (2, 3)})

    def test_shared_vertex_rejected(self, square):
        assert not is_matching(square, {(0, 1), (1, 2)})

    def test_non_edge_rejected(self, square):
        assert not is_matching(square, {(0, 2)})

    def test_maximal_matching(self, square):
        assert is_maximal_matching(square, {(0, 1), (2, 3)})
        assert not is_maximal_matching(square, {(0, 1)})

    def test_single_edge_maximal_on_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert is_maximal_matching(g, {(0, 1)})

    def test_matching_vertices(self):
        assert matching_vertices({(0, 1), (2, 3)}) == {0, 1, 2, 3}


class TestVertexCover:
    def test_full_cover(self, square):
        assert is_vertex_cover(square, {0, 1, 2, 3})

    def test_minimum_cover(self, square):
        assert is_vertex_cover(square, {0, 2})
        assert is_vertex_cover(square, {1, 3})

    def test_non_cover(self, square):
        assert not is_vertex_cover(square, {0})

    def test_empty_cover_on_edgeless(self):
        assert is_vertex_cover(Graph(5), set())


class TestFractional:
    def test_valid(self, square):
        weights = {(0, 1): 0.5, (1, 2): 0.5, (2, 3): 0.5, (0, 3): 0.5}
        assert is_valid_fractional_matching(square, weights)
        assert fractional_matching_weight(weights) == pytest.approx(2.0)

    def test_overloaded_vertex(self, square):
        weights = {(0, 1): 0.8, (1, 2): 0.8}
        assert not is_valid_fractional_matching(square, weights)

    def test_negative_weight(self, square):
        assert not is_valid_fractional_matching(square, {(0, 1): -0.1})

    def test_non_edge(self, square):
        assert not is_valid_fractional_matching(square, {(0, 2): 0.1})

    def test_vertex_loads(self, square):
        loads = vertex_loads({(0, 1): 0.25, (1, 2): 0.5})
        assert loads[1] == pytest.approx(0.75)
        assert loads[0] == pytest.approx(0.25)


class TestValidatorProperties:
    """Validators vs independently-constructed witnesses on random graphs."""

    @_SETTINGS
    @given(graph=graphs())
    def test_greedy_mis_accepted(self, graph: Graph):
        witness = greedy_mis_witness(graph)
        assert is_independent_set(graph, witness)
        assert is_maximal_independent_set(graph, witness)

    @_SETTINGS
    @given(graph=graphs(min_vertices=2, min_edges=1))
    def test_shrunk_mis_rejected(self, graph: Graph):
        witness = greedy_mis_witness(graph)
        # Removing any covered vertex breaks maximality (its neighborhood
        # no longer touches the set) — or independence stays but some
        # vertex is addable.
        smaller = witness - {min(witness)}
        assert not is_maximal_independent_set(graph, smaller) or not smaller

    @_SETTINGS
    @given(graph=graphs())
    def test_greedy_matching_accepted(self, graph: Graph):
        witness = greedy_matching_witness(graph)
        assert is_matching(graph, witness)
        assert is_maximal_matching(graph, witness)

    @_SETTINGS
    @given(graph=graphs(min_vertices=2, min_edges=1))
    def test_overlapping_matching_rejected(self, graph: Graph):
        u, v = next(iter(graph.edges()))
        # Duplicate an endpoint: {u,v} plus any other edge at u or v.
        other = next(
            (w for w in graph.neighbors_view(u) if w != v),
            next((w for w in graph.neighbors_view(v) if w != u), None),
        )
        assume(other is not None)
        anchor = u if other in graph.neighbors_view(u) else v
        assert not is_matching(
            graph, [canonical_edge(u, v), canonical_edge(anchor, other)]
        )

    @_SETTINGS
    @given(graph=dense_pair_graphs())
    def test_matching_endpoints_cover(self, graph: Graph):
        witness = greedy_matching_witness(graph)
        cover = matching_vertices(witness)
        # Endpoints of a maximal matching form a vertex cover (the
        # classic 2-approximation argument).
        assert is_vertex_cover(graph, cover)

    @_SETTINGS
    @given(graph=graphs(min_vertices=2, min_edges=1))
    def test_cover_without_edge_rejected(self, graph: Graph):
        u, v = next(iter(graph.edges()))
        cover = set(graph.vertices()) - {u, v}
        assert not is_vertex_cover(graph, cover)

    @_SETTINGS
    @given(graph=graphs())
    def test_uniform_fractional_matching_feasible(self, graph: Graph):
        # x_e = 1/max(1, Δ) keeps every vertex load at most 1.
        cap = max(1, graph.max_degree())
        weights = {edge: 1.0 / cap for edge in graph.edges()}
        assert is_valid_fractional_matching(graph, weights)
        assert fractional_matching_weight(weights) == pytest.approx(
            graph.num_edges / cap
        )
        loads = vertex_loads(weights)
        assert all(load <= 1.0 + 1e-9 for load in loads.values())

    @_SETTINGS
    @given(graph=graphs(min_vertices=2, min_edges=1))
    def test_overloaded_fractional_rejected(self, graph: Graph):
        u, v = next(iter(graph.edges()))
        weights = {canonical_edge(u, v): 1.5}
        assert not is_valid_fractional_matching(graph, weights)
