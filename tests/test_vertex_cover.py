"""Unit tests for the vertex cover API (Theorem 1.2, cover half)."""

import pytest

from repro.baselines.blossom import maximum_matching
from repro.baselines.exact import brute_force_minimum_vertex_cover
from repro.core.config import MatchingConfig
from repro.core.vertex_cover import cover_from_maximal_matching, mpc_vertex_cover
from repro.graph.generators import (
    complete_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_vertex_cover


class TestCoverValidity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cover_covers(self, seed):
        g = gnp_random_graph(200, 0.08, seed=seed)
        result = mpc_vertex_cover(g, seed=seed)
        assert is_vertex_cover(g, result.cover)

    def test_star_cover_small(self):
        g = star_graph(30)
        result = mpc_vertex_cover(g, seed=1)
        assert is_vertex_cover(g, result.cover)
        # Optimal is 1 (the center); (2+50eps) allows a small constant.
        assert result.size <= 4

    def test_path(self):
        g = path_graph(40)
        result = mpc_vertex_cover(g, seed=2)
        assert is_vertex_cover(g, result.cover)

    def test_edgeless_cover_empty(self):
        result = mpc_vertex_cover(Graph(5), seed=3)
        assert result.cover == set()


class TestCoverQuality:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_factor_vs_matching_lower_bound(self, seed):
        """|cover| <= (2+O(eps)) |M*| <= (2+O(eps)) * 2 * |VC*|; we assert
        the tighter matching-based bound the paper proves."""
        eps = 0.1
        g = gnp_random_graph(200, 0.08, seed=seed)
        result = mpc_vertex_cover(g, config=MatchingConfig(epsilon=eps), seed=seed)
        optimum_matching = len(maximum_matching(g))
        assert result.size <= (2 + 100 * eps) * optimum_matching + 1

    def test_against_exact_on_tiny_graphs(self):
        g = gnp_random_graph(24, 0.2, seed=4)
        exact = len(brute_force_minimum_vertex_cover(g))
        result = mpc_vertex_cover(g, seed=4)
        assert result.size <= 3 * exact + 2  # (2+50eps) with slack at n=24

    def test_complete_graph(self):
        g = complete_graph(16)
        result = mpc_vertex_cover(g, seed=5)
        assert is_vertex_cover(g, result.cover)
        assert result.size <= 16


class TestHelpers:
    def test_cover_from_maximal_matching(self):
        g = path_graph(5)
        cover = cover_from_maximal_matching(g, {(0, 1), (2, 3)})
        assert cover == {0, 1, 2, 3}
        assert is_vertex_cover(g, cover)

    def test_fractional_weight_reported(self):
        g = gnp_random_graph(100, 0.1, seed=6)
        result = mpc_vertex_cover(g, seed=6)
        assert result.fractional_weight > 0
