"""Unit tests for edge-list I/O."""

import pytest

from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_round_trip(self, tmp_path):
        g = Graph(6, [(0, 1), (2, 5), (3, 4)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_trailing_isolated_vertices_survive(self, tmp_path):
        g = Graph(10, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).num_vertices == 10

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)
