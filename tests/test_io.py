"""Unit tests for edge-list I/O."""

import gzip

import pytest

from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph
from repro.graph.io import iter_edge_list, read_edge_list, write_edge_list


class TestRoundTrip:
    def test_round_trip(self, tmp_path):
        g = Graph(6, [(0, 1), (2, 5), (3, 4)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_trailing_isolated_vertices_survive(self, tmp_path):
        g = Graph(10, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).num_vertices == 10

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestGzip:
    def test_gz_round_trip(self, tmp_path):
        g = Graph(8, [(0, 1), (2, 7), (3, 4)])
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_gz_file_is_actually_compressed(self, tmp_path):
        g = gnm_random_graph(50, 200, seed=1)
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        with gzip.open(path, "rt", encoding="utf-8") as stream:
            assert stream.readline().startswith("n 50")

    def test_read_external_gz(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            stream.write("# c\n0 1\n1 2\n")
        assert read_edge_list(path).num_edges == 2


class TestIterEdgeList:
    def test_chunks_are_bounded_and_complete(self, tmp_path):
        g = gnm_random_graph(40, 100, seed=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        chunks = list(iter_edge_list(path, chunk_edges=7))
        assert all(len(edges) <= 7 for _, edges in chunks)
        collected = [e for _, edges in chunks for e in edges]
        assert sorted(collected) == g.edge_list()

    def test_vertex_count_is_cumulative(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n8 9\n2 3\n")
        counts = [n for n, _ in iter_edge_list(path, chunk_edges=1)]
        assert counts == [2, 10, 10]

    def test_header_reaches_consumer_even_without_edges(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("n 12\n# nothing else\n")
        chunks = list(iter_edge_list(path))
        assert chunks == [(12, [])]

    def test_parity_with_read_edge_list(self, tmp_path):
        g = gnm_random_graph(30, 60, seed=3)
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        streamed_n = 0
        edges = []
        for streamed_n, chunk in iter_edge_list(path, chunk_edges=11):
            edges.extend(chunk)
        assert Graph(streamed_n, edges) == read_edge_list(path)

    def test_invalid_chunk_size(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="chunk_edges"):
            list(iter_edge_list(path, chunk_edges=0))
