"""Unit tests for edge-list I/O."""

import gzip

import pytest

from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph
from repro.graph.io import iter_edge_list, read_edge_list, write_edge_list


class TestRoundTrip:
    def test_round_trip(self, tmp_path):
        g = Graph(6, [(0, 1), (2, 5), (3, 4)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_trailing_isolated_vertices_survive(self, tmp_path):
        g = Graph(10, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).num_vertices == 10

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestGzip:
    def test_gz_round_trip(self, tmp_path):
        g = Graph(8, [(0, 1), (2, 7), (3, 4)])
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_gz_file_is_actually_compressed(self, tmp_path):
        g = gnm_random_graph(50, 200, seed=1)
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        with gzip.open(path, "rt", encoding="utf-8") as stream:
            assert stream.readline().startswith("n 50")

    def test_read_external_gz(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            stream.write("# c\n0 1\n1 2\n")
        assert read_edge_list(path).num_edges == 2


class TestIterEdgeList:
    def test_chunks_are_bounded_and_complete(self, tmp_path):
        g = gnm_random_graph(40, 100, seed=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        chunks = list(iter_edge_list(path, chunk_edges=7))
        assert all(len(edges) <= 7 for _, edges in chunks)
        collected = [e for _, edges in chunks for e in edges]
        assert sorted(collected) == g.edge_list()

    def test_vertex_count_is_cumulative(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n8 9\n2 3\n")
        counts = [n for n, _ in iter_edge_list(path, chunk_edges=1)]
        assert counts == [2, 10, 10]

    def test_header_reaches_consumer_even_without_edges(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("n 12\n# nothing else\n")
        chunks = list(iter_edge_list(path))
        assert chunks == [(12, [])]

    def test_parity_with_read_edge_list(self, tmp_path):
        g = gnm_random_graph(30, 60, seed=3)
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        streamed_n = 0
        edges = []
        for streamed_n, chunk in iter_edge_list(path, chunk_edges=11):
            edges.extend(chunk)
        assert Graph(streamed_n, edges) == read_edge_list(path)

    def test_invalid_chunk_size(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="chunk_edges"):
            list(iter_edge_list(path, chunk_edges=0))


class TestStrictness:
    """Header/endpoint consistency errors carry path and line number."""

    @staticmethod
    def collect(path, **kw):
        return list(iter_edge_list(path, **kw))

    def test_header_smaller_than_endpoint_already_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 7\nn 3\n")
        with pytest.raises(ValueError, match=r"g\.txt:2: header declares n=3"):
            self.collect(path)

    def test_endpoint_beyond_declared_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("n 5\n0 1\n2 5\n")
        with pytest.raises(
            ValueError, match=r"g\.txt:3: endpoint 5 out of range"
        ):
            self.collect(path)

    def test_error_line_numbers_count_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header comment\n\nn 4\n0 1\n9 1\n")
        with pytest.raises(ValueError, match=r"g\.txt:5: endpoint 9"):
            self.collect(path)

    def test_read_edge_list_enforces_declared_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("n 2\n0 3\n")
        with pytest.raises(ValueError, match="out of range"):
            read_edge_list(path)

    def test_growing_header_is_allowed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("n 2\n0 1\nn 6\n0 5\n")
        n, edges = self.collect(path)[-1]
        assert n == 6

    def test_malformed_line_is_line_numbered(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n2 3 4\n")
        with pytest.raises(ValueError, match=r"g\.txt:2: malformed"):
            self.collect(path)


class TestIterEdgeArray:
    """The vectorized block iterator must agree with the line iterator."""

    @staticmethod
    def as_pairs(path, **kw):
        from repro.graph.io import iter_edge_array

        out = []
        n = 0
        for n, block in iter_edge_array(path, **kw):
            out.extend(map(tuple, block.tolist()))
        return n, out

    def test_parity_with_iter_edge_list(self, tmp_path):
        g = gnm_random_graph(80, 400, seed=3)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        n_arr, pairs_arr = self.as_pairs(path, chunk_edges=57)
        chunks = list(iter_edge_list(path, chunk_edges=57))
        pairs_list = [edge for _, chunk in chunks for edge in chunk]
        assert n_arr == chunks[-1][0] == 80
        assert pairs_arr == pairs_list

    def test_parity_on_gzip(self, tmp_path):
        g = gnm_random_graph(40, 150, seed=9)
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        n_arr, pairs_arr = self.as_pairs(path)
        assert n_arr == 40
        assert len(pairs_arr) == 150

    def test_yields_header_even_without_edges(self, tmp_path):
        from repro.graph.io import iter_edge_array

        path = tmp_path / "g.txt"
        path.write_text("n 9\n")
        chunks = list(iter_edge_array(path))
        assert len(chunks) == 1
        assert chunks[0][0] == 9
        assert len(chunks[0][1]) == 0

    def test_strictness_matches_line_iterator(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("n 3\n0 1\n1 4\n")
        with pytest.raises(ValueError, match=r"g\.txt:3: endpoint 4"):
            self.as_pairs(path)
        path.write_text("0 6\nn 2\n")
        with pytest.raises(ValueError, match=r"g\.txt:2: header declares n=2"):
            self.as_pairs(path)

    def test_compensating_malformation_rejected(self, tmp_path):
        # "01\n2 3 4" must not be re-tokenized into "01 2" / "3 4" by the
        # block-splitting fast path: each physical line stands alone.
        path = tmp_path / "g.txt"
        path.write_text("01\n2 3 4\n")
        with pytest.raises(ValueError, match="malformed"):
            self.as_pairs(path)

    def test_negative_endpoints_pass_through(self, tmp_path):
        # Range rejection is the builder's job (graphs reject them);
        # the iterator parses any integer pair.
        path = tmp_path / "g.txt"
        path.write_text("0 1\n-2 3\n")
        _, pairs = self.as_pairs(path)
        assert (-2, 3) in pairs
