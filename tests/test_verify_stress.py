"""Nightly-scale differential stress run on the CSR-accelerated backends.

Skipped by default (the full run takes on the order of a minute); enable
with::

    REPRO_RUN_SLOW=1 PYTHONPATH=src python -m pytest tests/test_verify_stress.py -m slow

Every run is fully seeded, so a failure here reproduces deterministically.
"""

from __future__ import annotations

import os

import pytest

from repro.api import solve
from repro.graph.generators import gnp_random_graph
from repro.verify import BudgetPolicy

RUN_SLOW = os.environ.get("REPRO_RUN_SLOW", "") not in ("", "0")

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not RUN_SLOW, reason="stress run; set REPRO_RUN_SLOW=1 to enable"
    ),
]

N = 50_000
SEEDS = (0, 1)

# The paper's MPC algorithms — the CSR-vectorized hot paths PR 2 rewired —
# at a size where an accidental O(n^2) scan or a budget regression is
# unmissable.
CASES = [
    ("mis", "mpc"),
    ("fractional_matching", "mpc"),
    ("matching", "mpc"),
    ("vertex_cover", "mpc"),
]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("task,backend", CASES, ids=lambda v: str(v))
def test_stress_50k_certificates(task: str, backend: str, seed: int) -> None:
    graph = gnp_random_graph(N, 8.0 / N, seed=seed)
    report = solve(
        task, graph, backend=backend, seed=seed, verify=BudgetPolicy()
    )
    assert report.valid, f"{task}/{backend} invalid at n={N}, seed={seed}"
    assert report.verified, (
        f"{task}/{backend} certificate failed at n={N}, seed={seed}: "
        f"{[c for c in report.verification['checks'] if not c['passed']]}"
    )
