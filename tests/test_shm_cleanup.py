"""Shared-memory cleanup when a ``MultiprocessTransport`` is interrupted.

Pins the bugfix where the transport registered no atexit cleanup: a
Ctrl-C mid-solve unwound through frames still referencing the transport,
``__del__`` was left to GC ordering during interpreter shutdown, and the
driver-owned /dev/shm segments could outlive the process (surfacing as
``resource_tracker`` "leaked shared_memory" warnings at best, orphaned
segments at worst).  Now every live transport is swept by one
process-wide atexit hook.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.dist import transport as transport_module
from repro.dist.transport import MultiprocessTransport

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX shared memory + signals"
)


def test_atexit_hook_closes_live_transports():
    """The sweep closes (and unlinks) any transport never close()-d."""
    transport = MultiprocessTransport(workers=1)
    transport.install("sess", {"a": np.arange(64, dtype=np.int64)})
    names = [
        segment.name
        for segments in transport._segments.values()
        for segment in segments
    ]
    assert names and transport in transport_module._LIVE_TRANSPORTS
    transport_module._close_live_transports()
    assert transport._closed
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")


def test_closed_transport_leaves_the_live_set():
    transport = MultiprocessTransport(workers=1)
    assert transport in transport_module._LIVE_TRANSPORTS
    transport.close()
    assert transport not in transport_module._LIVE_TRANSPORTS
    transport_module._close_live_transports()  # idempotent on closed


_CHILD = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    from repro.dist.transport import MultiprocessTransport

    def run():
        transport = MultiprocessTransport(workers=2)
        transport.install("sess", {"a": np.arange(1024, dtype=np.int64)})
        names = [s.name for segs in transport._segments.values() for s in segs]
        print("SEGMENTS:" + ",".join(names), flush=True)
        # Keep the transport alive in this frame; the interrupt unwinds
        # through here without ever calling close().
        time.sleep(120)

    run()
    """
)


def test_sigint_during_solve_leaks_no_segments(tmp_path):
    """SIGINT mid-run: the child must exit without orphaning /dev/shm
    segments and without the resource tracker reporting leaks."""
    script = tmp_path / "child.py"
    script.write_text(_CHILD)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline().strip()
        assert line.startswith("SEGMENTS:"), line
        names = line.split(":", 1)[1].split(",")
        assert names
        time.sleep(0.3)  # let the child settle into the sleep
        process.send_signal(signal.SIGINT)
        _, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    leaked = [name for name in names if os.path.exists(f"/dev/shm/{name}")]
    for name in leaked:  # clean up before failing loudly
        os.unlink(f"/dev/shm/{name}")
    assert not leaked, f"segments survived SIGINT: {leaked}"
    assert "leaked" not in stderr, stderr
