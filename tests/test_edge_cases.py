"""Edge-case tests across the public API: tiny inputs, degenerate
parameters, and override hooks that the main suites don't reach."""

import pytest

from repro.core.central import run_freezing_process
from repro.core.config import MatchingConfig, MISConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.core.sparsified_mis import sparsified_mis
from repro.core.thresholds import ThresholdOracle, fixed_oracle
from repro.graph.generators import gnp_random_graph, path_graph
from repro.graph.graph import Graph
from repro.graph.properties import (
    is_maximal_independent_set,
    is_vertex_cover,
)
from repro.mpc.engine import PregelEngine


class TestTinyGraphs:
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_mis_tiny(self, n):
        g = Graph(n)
        result = mis_mpc(g, seed=1)
        assert result.mis == set(range(n))

    def test_single_edge_everything(self):
        g = Graph(2, [(0, 1)])
        mis = mis_mpc(g, seed=1)
        assert len(mis.mis) == 1
        matching = mpc_fractional_matching(g, seed=1)
        assert is_vertex_cover(g, matching.vertex_cover)

    def test_two_disconnected_edges(self):
        g = Graph(4, [(0, 1), (2, 3)])
        result = mis_mpc(g, seed=2)
        assert len(result.mis) == 2
        assert is_maximal_independent_set(g, result.mis)


class TestParameterOverrides:
    def test_matching_with_explicit_oracle(self):
        """Passing an oracle must override the internal one — the coupling
        hook the concentration experiment depends on."""
        g = gnp_random_graph(100, 0.08, seed=3)
        oracle = fixed_oracle(0.8)
        a = mpc_fractional_matching(g, seed=3, oracle=oracle)
        b = mpc_fractional_matching(g, seed=3, oracle=oracle)
        assert a.freeze_iteration == b.freeze_iteration

    def test_freezing_process_with_custom_interval(self):
        g = gnp_random_graph(60, 0.1, seed=4)
        oracle = ThresholdOracle(0.5, 0.7, seed=4)
        result = run_freezing_process(
            graph=g,
            epsilon=0.1,
            oracle=oracle,
            initial_weight=1.0 / 60,
            max_iterations=10_000,
        )
        assert is_vertex_cover(g, result.vertex_cover)

    def test_sparsified_rounds_factor(self):
        g = gnp_random_graph(100, 0.05, seed=5)
        fast = sparsified_mis(g, seed=5, rounds_factor=0.5)
        slow = sparsified_mis(g, seed=5, rounds_factor=4.0)
        assert is_maximal_independent_set(g, fast.mis)
        assert is_maximal_independent_set(g, slow.mis)
        assert slow.luby_rounds_simulated >= fast.luby_rounds_simulated

    def test_mis_custom_schedule_constants(self):
        g = gnp_random_graph(256, 0.5, seed=6)
        config = MISConfig(alpha=0.6, sparse_degree_exponent=1.5)
        result = mis_mpc(g, seed=6, config=config)
        assert is_maximal_independent_set(g, result.mis)

    def test_matching_aggressive_epsilon(self):
        g = gnp_random_graph(128, 0.08, seed=7)
        config = MatchingConfig(epsilon=0.49)
        result = mpc_fractional_matching(g, config=config, seed=7)
        assert result.matching.is_valid()
        assert is_vertex_cover(g, result.vertex_cover)

    def test_matching_tight_epsilon(self):
        g = gnp_random_graph(96, 0.08, seed=8)
        config = MatchingConfig(epsilon=0.02)
        result = mpc_fractional_matching(g, config=config, seed=8)
        assert result.matching.is_valid()


class TestEngineConfiguration:
    def test_explicit_machine_count(self):
        g = path_graph(20)
        engine = PregelEngine(g, num_machines=3, seed=9)
        assert engine.cluster.num_machines == 3

    def test_single_vertex_graph(self):
        g = Graph(1)
        engine = PregelEngine(g, seed=10)

        def compute(ctx, messages):
            ctx.state["ran"] = True
            ctx.vote_to_halt()

        result = engine.run(compute)
        assert result.states[0]["ran"]

    def test_empty_graph_runs(self):
        engine = PregelEngine(Graph(0), seed=11)
        result = engine.run(lambda ctx, msgs: ctx.vote_to_halt())
        assert result.supersteps == 0
