"""Unit tests for shared MPC communication primitives."""

import pytest

from repro.graph.generators import gnp_random_graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.primitives import (
    assignment_map,
    broadcast_vertex_set,
    gather_edges_to_leader,
    partition_vertices,
    scatter_induced_subgraphs,
)


class TestPartition:
    def test_partition_covers_all_vertices(self):
        parts = partition_vertices(range(100), 7, seed=1)
        assert len(parts) == 7
        assert sorted(v for part in parts for v in part) == list(range(100))

    def test_partition_deterministic(self):
        assert partition_vertices(range(50), 5, seed=2) == partition_vertices(
            range(50), 5, seed=2
        )

    def test_partition_roughly_balanced(self):
        parts = partition_vertices(range(10_000), 10, seed=3)
        sizes = [len(p) for p in parts]
        assert max(sizes) < 2 * min(sizes)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_vertices(range(5), 0)

    def test_assignment_map_inverts(self):
        parts = [[0, 2], [1, 3]]
        owner = assignment_map(parts)
        assert owner == {0: 0, 2: 0, 1: 1, 3: 1}


class TestScatter:
    def test_scatter_counts_rounds_and_fits(self):
        graph = gnp_random_graph(60, 0.2, seed=4)
        cluster = MPCCluster(4, words_per_machine=8 * 60)
        parts = partition_vertices(graph.vertices(), 4, seed=4)
        induced = scatter_induced_subgraphs(cluster, graph, parts)
        assert cluster.rounds == 1
        assert len(induced) == 4
        total = sum(len(edges) for edges in induced)
        assert total <= graph.num_edges

    def test_gather_to_leader(self):
        cluster = MPCCluster(2, words_per_machine=100)
        gather_edges_to_leader(cluster, [(0, 1), (2, 3)])
        assert cluster.machine(0).load("gathered_edges") == [(0, 1), (2, 3)]
        assert cluster.rounds == 1

    def test_broadcast_vertex_set(self):
        cluster = MPCCluster(2, words_per_machine=100)
        broadcast_vertex_set(cluster, {1, 2, 3})
        assert cluster.rounds == 1
