"""CSR kernel layer: equivalence against the set-based reference Graph.

Every vectorized kernel must agree with the pure-Python :class:`Graph`
implementation on random (hypothesis-generated + seeded generators) and
structured graphs; conversions must round-trip losslessly; and the façade
backends must stay deterministic under fixed seeds now that the hot paths
run on CSR.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import registry, solve
from repro.graph.csr import CSRGraph, GraphView, as_csr, as_graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


# -- strategies (shared; see tests/property/strategies.py) ------------------

from tests.property.strategies import (  # noqa: E402
    dense_pair_graphs as graphs,
    graphs_with_subsets,
    mask_of,
)


STRUCTURED = [
    Graph(0),
    Graph(5),
    path_graph(17),
    star_graph(12),
    complete_graph(9),
    grid_graph(4, 5),
    gnp_random_graph(60, 0.1, seed=3),
    gnp_random_graph(60, 0.5, seed=4),
    barabasi_albert(60, 3, seed=5),
]


# -- conversions ------------------------------------------------------------


class TestConversion:
    @pytest.mark.parametrize("graph", STRUCTURED, ids=repr)
    def test_round_trip_structured(self, graph):
        assert CSRGraph.from_graph(graph).to_graph() == graph

    @given(graphs())
    def test_round_trip(self, graph):
        csr = CSRGraph.from_graph(graph)
        assert csr.to_graph() == graph
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges

    @given(graphs())
    def test_from_edges_matches_from_graph(self, graph):
        built = CSRGraph.from_edges(graph.num_vertices, graph.edges())
        assert built == CSRGraph.from_graph(graph)

    def test_from_edge_array_collapses_duplicates_and_orientations(self):
        csr = CSRGraph.from_edge_array(4, np.array([[0, 1], [1, 0], [2, 3], [0, 1]]))
        assert csr.num_edges == 2
        assert csr.edge_list() == [(0, 1), (2, 3)]

    def test_from_edge_array_rejects_self_loops_and_range(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edge_array(3, np.array([[1, 1]]))
        with pytest.raises(ValueError):
            CSRGraph.from_edge_array(3, np.array([[0, 3]]))

    def test_helpers_and_protocol(self):
        graph = path_graph(6)
        csr = as_csr(graph)
        assert as_csr(csr) is csr
        assert as_graph(csr) == graph
        assert as_graph(graph) is graph
        assert isinstance(graph, GraphView)
        assert isinstance(csr, GraphView)


class TestRoundTripEdgeCases:
    """Explicit pins for the empty graph and isolated-vertex shapes.

    The hypothesis strategies above can shrink past these; pinning them
    keeps the round-trip guarantees from regressing silently.
    """

    def test_empty_graph_round_trip(self):
        csr = CSRGraph.from_graph(Graph(0))
        assert csr.num_vertices == 0
        assert csr.num_edges == 0
        assert csr.to_graph() == Graph(0)
        assert csr.edge_array().shape == (0, 2)
        assert CSRGraph.from_edges(0, []) == csr

    def test_empty_graph_kernels(self):
        csr = CSRGraph.from_graph(Graph(0))
        assert csr.degrees().tolist() == []
        assert csr.max_degree() == 0
        sub, kept = csr.induced_subgraph(None)
        assert sub.num_vertices == 0 and kept.tolist() == []
        assert csr.remove_closed_neighborhoods([]).tolist() == []
        assert csr.neighbors_bulk([]).tolist() == []

    def test_edgeless_graph_round_trip(self):
        graph = Graph(7)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_vertices == 7
        assert csr.num_edges == 0
        assert csr.to_graph() == graph

    @pytest.mark.parametrize(
        "edges", [[(0, 1)], [(2, 3)], [(0, 1), (4, 5)]], ids=repr
    )
    def test_isolated_vertices_survive_round_trip(self, edges):
        # Vertex count exceeds the touched endpoints: trailing (and
        # leading) isolated vertices must be preserved by both directions.
        graph = Graph(6, edges)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_vertices == 6
        assert csr.to_graph() == graph
        assert CSRGraph.from_edges(6, edges) == csr
        assert [csr.degree(v) for v in range(6)] == graph.degrees()

    def test_isolated_only_induced_subgraph(self):
        csr = CSRGraph.from_graph(Graph(6, [(0, 1), (2, 3)]))
        sub, kept = csr.induced_subgraph([4, 5])
        assert kept.tolist() == [4, 5]
        assert sub.to_graph() == Graph(2)


# -- kernel equivalence -----------------------------------------------------


class TestKernelEquivalence:
    @given(graphs())
    def test_degrees_and_edges(self, graph):
        csr = CSRGraph.from_graph(graph)
        assert csr.degrees().tolist() == graph.degrees()
        assert csr.max_degree() == graph.max_degree()
        assert csr.edge_list() == graph.edge_list()
        assert list(csr.edges()) == sorted(graph.edges())
        for v in range(graph.num_vertices):
            assert csr.degree(v) == graph.degree(v)
            assert set(csr.neighbors(v).tolist()) == graph.neighbors(v)

    @given(graphs())
    def test_has_edge(self, graph):
        csr = CSRGraph.from_graph(graph)
        n = graph.num_vertices
        for u in range(min(n, 8)):
            for v in range(n):
                assert csr.has_edge(u, v) == graph.has_edge(u, v)
        assert not csr.has_edge(-1, 0)
        assert not csr.has_edge(0, n + 3)

    @given(graphs_with_subsets())
    def test_residual_degrees(self, graph_and_subset):
        # degrees(mask) is the degree sequence of G[mask]: masked vertices
        # count masked neighbors, everything else reads 0.
        graph, subset = graph_and_subset
        n = graph.num_vertices
        csr = CSRGraph.from_graph(graph)
        got = csr.degrees(mask_of(subset, n))
        for v in range(n):
            if v in subset:
                expected = sum(1 for u in graph.neighbors_view(v) if u in subset)
            else:
                expected = 0
            assert got[v] == expected

    @given(graphs_with_subsets())
    def test_count_and_induced_edges(self, graph_and_subset):
        graph, subset = graph_and_subset
        n = graph.num_vertices
        csr = CSRGraph.from_graph(graph)
        mask = mask_of(subset, n)
        expected = sorted(graph.induced_edges(subset))
        assert csr.count_edges_within(mask) == len(expected)
        assert [tuple(e) for e in csr.induced_edges(mask).tolist()] == expected
        # Vertex-list form of the mask argument is accepted too.
        assert csr.count_edges_within(np.array(sorted(subset), dtype=np.int64)) == len(
            expected
        )

    @given(graphs_with_subsets())
    def test_induced_subgraph(self, graph_and_subset):
        graph, subset = graph_and_subset
        csr = CSRGraph.from_graph(graph)
        sub, vertices = csr.induced_subgraph(mask_of(subset, graph.num_vertices))
        assert vertices.tolist() == sorted(subset)
        assert sub.to_graph() == graph.induced_subgraph(subset)

    @given(graphs_with_subsets())
    def test_filter_edges(self, graph_and_subset):
        graph, subset = graph_and_subset
        n = graph.num_vertices
        csr = CSRGraph.from_graph(graph)
        filtered = csr.filter_edges(mask_of(subset, n))
        assert filtered.num_vertices == n
        assert filtered.edge_list() == sorted(graph.induced_edges(subset))

    @given(graphs())
    def test_remove_closed_neighborhoods(self, graph):
        # The batch kernel removes union of *original* closed
        # neighborhoods N[v] of the listed vertices.
        n = graph.num_vertices
        if n == 0:
            return
        centers = list(range(0, n, 3))
        csr = CSRGraph.from_graph(graph)
        alive = csr.remove_closed_neighborhoods(centers)
        removed = set()
        for v in centers:
            removed.add(v)
            removed |= graph.neighbors_view(v)
        assert set(np.flatnonzero(~alive).tolist()) == removed
        # Chaining with an existing mask composes (idempotent here).
        again = csr.remove_closed_neighborhoods(centers, alive)
        assert np.array_equal(again, alive)

    @given(graphs())
    def test_remove_closed_neighborhoods_independent_set(self, graph):
        # For an independent set of centers — the only way the MIS hot
        # paths call it — the batch kernel agrees with the sequential
        # set-based removal process exactly.
        n = graph.num_vertices
        if n == 0:
            return
        independent = []
        blocked = set()
        for v in range(n):
            if v not in blocked:
                independent.append(v)
                blocked.add(v)
                blocked |= graph.neighbors_view(v)
        csr = CSRGraph.from_graph(graph)
        alive = csr.remove_closed_neighborhoods(independent)
        residual = graph.copy()
        removed = set()
        for v in independent:
            removed |= residual.remove_closed_neighborhood(v)
        assert set(np.flatnonzero(~alive).tolist()) == removed

    @given(graphs(), st.integers(min_value=0, max_value=6))
    def test_threshold_filter(self, graph, cap):
        csr = CSRGraph.from_graph(graph)
        expected = {v for v in range(graph.num_vertices) if graph.degree(v) <= cap}
        assert set(np.flatnonzero(csr.threshold_filter(cap)).tolist()) == expected

    def test_threshold_filter_respects_mask(self):
        graph = star_graph(6)  # center 0 has degree 6
        csr = CSRGraph.from_graph(graph)
        mask = np.array([True, True, True, False, False, False, False])
        kept = csr.threshold_filter(2, mask)
        # Center keeps only 2 masked neighbors, so it passes; leaves pass;
        # vertices outside the mask never pass.
        assert set(np.flatnonzero(kept).tolist()) == {0, 1, 2}

    def test_sample_vertices(self):
        csr = CSRGraph.from_graph(gnp_random_graph(200, 0.05, seed=1))
        assert csr.sample_vertices(0.0, 1).size == 0
        assert csr.sample_vertices(1.0, 1).size == 200
        first = csr.sample_vertices(0.3, 42)
        assert np.array_equal(first, csr.sample_vertices(0.3, 42))
        assert 20 <= first.size <= 120  # loose binomial sanity band
        with pytest.raises(ValueError):
            csr.sample_vertices(1.5, 1)

    def test_neighbors_bulk(self):
        graph = gnp_random_graph(40, 0.2, seed=9)
        csr = CSRGraph.from_graph(graph)
        picks = [0, 7, 33]
        expected = [u for v in picks for u in sorted(graph.neighbors_view(v))]
        assert csr.neighbors_bulk(picks).tolist() == expected
        assert csr.neighbors_bulk([]).size == 0

    def test_mask_length_validation(self):
        csr = CSRGraph.from_graph(path_graph(4))
        with pytest.raises(ValueError):
            csr.degrees(np.ones(3, dtype=bool))

    def test_equality_and_hash(self):
        a = CSRGraph.from_graph(path_graph(5))
        b = CSRGraph.from_graph(path_graph(5))
        assert a == b
        assert a != CSRGraph.from_graph(star_graph(4))
        with pytest.raises(TypeError):
            hash(a)


# -- end-to-end parity ------------------------------------------------------


class TestEndToEndParity:
    """Every registered task × backend stays deterministic under a fixed
    seed with the CSR hot paths in place, and solutions validate."""

    @pytest.mark.parametrize(
        "task,backend",
        [(entry.task, entry.backend) for entry in registry.entries()],
    )
    def test_solve_deterministic_and_valid(self, task, backend):
        graph = gnp_random_graph(60, 0.15, seed=11)
        first = solve(task, graph, backend=backend, seed=5)
        second = solve(task, graph, backend=backend, seed=5)
        assert first.solution == second.solution
        assert first.rounds == second.rounds
        assert first.valid
        assert first.peak_rss_bytes >= 0

    def test_mis_mpc_matches_structured_families(self):
        # The CSR rewiring must leave seeded outputs identical across
        # residual-graph shapes that exercise every kernel branch.
        for graph in (star_graph(30), complete_graph(25), grid_graph(6, 7)):
            a = solve("mis", graph, backend="mpc", seed=3)
            b = solve("mis", graph, backend="mpc", seed=3)
            assert a.solution == b.solution
            assert a.valid
