"""Unit tests for repro.stream: overlay, batches, maintainers, driver, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import gnm_random_graph, path_graph, star_graph
from repro.graph.graph import Graph, canonical_edge
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_valid_fractional_matching,
    is_vertex_cover,
)
from repro.stream import (
    DynamicGraph,
    EdgeBatch,
    StreamReport,
    churn_batches,
    growth_batches,
    make_maintainer,
    make_scenario,
    read_batches_jsonl,
    replay_edge_list,
    sliding_window_batches,
    solve_stream,
    write_batches_jsonl,
)
from repro.stream.__main__ import main as stream_cli
from repro.stream.dynamic import decode_keys, encode_edges


class TestEdgeBatch:
    def test_make_canonicalizes_and_dedups(self):
        batch = EdgeBatch.make(insertions=[(3, 1), (1, 3), (0, 2)])
        assert batch.insertions.tolist() == [[0, 2], [1, 3]]
        assert batch.size == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            EdgeBatch.make(insertions=[(2, 2)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            EdgeBatch.make(deletions=[(-1, 2)])

    def test_negative_growth_rejected(self):
        with pytest.raises(ValueError, match="new_vertices"):
            EdgeBatch.make(new_vertices=-1)

    def test_touched_vertices(self):
        batch = EdgeBatch.make(insertions=[(0, 5)], deletions=[(2, 5)])
        assert batch.touched_vertices().tolist() == [0, 2, 5]

    def test_dict_round_trip(self):
        batch = EdgeBatch.make(
            insertions=[(0, 1)], deletions=[(2, 3)], new_vertices=2, timestamp=7.0
        )
        clone = EdgeBatch.from_dict(batch.to_dict())
        assert clone.insertions.tolist() == batch.insertions.tolist()
        assert clone.deletions.tolist() == batch.deletions.tolist()
        assert clone.new_vertices == 2
        assert clone.timestamp == 7.0

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            EdgeBatch.from_dict({"schema": 99})


class TestEdgeKeys:
    def test_encode_decode_round_trip(self):
        edges = np.array([[0, 1], [5, 2], [100000, 99999]], dtype=np.int64)
        decoded = decode_keys(encode_edges(edges))
        assert decoded.tolist() == [[0, 1], [2, 5], [99999, 100000]]


class TestDynamicGraph:
    def test_starts_identical_to_base(self):
        base = gnm_random_graph(20, 40, seed=1)
        dyn = DynamicGraph(base)
        assert dyn.num_vertices == 20
        assert dyn.num_edges == 40
        assert dyn.pending_edits == 0
        assert dyn.to_graph() == base

    def test_add_and_remove_edge(self):
        dyn = DynamicGraph(Graph(4, [(0, 1)]))
        assert dyn.add_edge(1, 2)
        assert dyn.has_edge(1, 2) and dyn.has_edge(2, 1)
        assert dyn.num_edges == 2
        dyn.remove_edge(0, 1)
        assert not dyn.has_edge(0, 1)
        assert dyn.num_edges == 1

    def test_duplicate_insert_is_noop(self):
        dyn = DynamicGraph(Graph(3, [(0, 1)]))
        assert not dyn.add_edge(0, 1)  # already in base
        dyn.add_edge(1, 2)
        assert not dyn.add_edge(2, 1)  # already in delta
        assert dyn.num_edges == 2

    def test_remove_missing_raises(self):
        dyn = DynamicGraph(Graph(3, [(0, 1)]))
        with pytest.raises(KeyError):
            dyn.remove_edge(1, 2)
        assert not dyn.discard_edge(1, 2)

    def test_reinsert_after_remove(self):
        dyn = DynamicGraph(Graph(3, [(0, 1)]))
        dyn.remove_edge(0, 1)
        assert dyn.add_edge(0, 1)
        assert dyn.has_edge(0, 1)
        assert dyn.num_edges == 1

    def test_self_loop_rejected(self):
        dyn = DynamicGraph(Graph(3))
        with pytest.raises(ValueError, match="self-loop"):
            dyn.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        dyn = DynamicGraph(Graph(3))
        with pytest.raises(ValueError, match="out of range"):
            dyn.add_edge(0, 3)

    def test_degree_and_neighbors_merge_delta(self):
        dyn = DynamicGraph(Graph(5, [(0, 1), (0, 2)]))
        dyn.remove_edge(0, 1)
        dyn.add_edge(0, 4)
        assert dyn.degree(0) == 2
        assert dyn.neighbors(0).tolist() == [2, 4]
        assert dyn.neighbors(3).tolist() == []

    def test_add_vertices(self):
        dyn = DynamicGraph(Graph(3, [(0, 1)]))
        first = dyn.add_vertices(2)
        assert first == 3
        assert dyn.num_vertices == 5
        dyn.add_edge(1, 4)
        assert dyn.degree(4) == 1
        assert dyn.neighbors(4).tolist() == [1]
        assert dyn.to_graph() == Graph(5, [(0, 1), (1, 4)])

    def test_compact_folds_delta_and_advances_epoch(self):
        base = gnm_random_graph(15, 30, seed=2)
        dyn = DynamicGraph(base)
        dyn.remove_edge(*next(iter(base.edges())))
        dyn.add_vertices(1)
        dyn.add_edge(0, 15)
        before = dyn.to_graph()
        csr = dyn.compact()
        assert dyn.epoch == 1
        assert dyn.pending_edits == 0
        assert csr.to_graph() == before
        assert dyn.base is csr

    def test_compact_without_pending_is_cheap_noop(self):
        dyn = DynamicGraph(Graph(4, [(0, 1)]))
        base = dyn.base
        assert dyn.compact() is base
        assert dyn.epoch == 1

    def test_snapshot_cached_until_mutation(self):
        dyn = DynamicGraph(Graph(4, [(0, 1)]))
        dyn.add_edge(1, 2)
        snap = dyn.snapshot()
        assert dyn.snapshot() is snap
        dyn.add_edge(2, 3)
        assert dyn.snapshot() is not snap

    def test_dirty_vertices_track_effective_edits(self):
        dyn = DynamicGraph(Graph(5, [(0, 1)]))
        dyn.add_edge(0, 1)  # no-op: not dirty
        dyn.add_edge(2, 3)
        dyn.remove_edge(0, 1)
        assert dyn.dirty_vertices().tolist() == [0, 1, 2, 3]
        dyn.compact()
        assert dyn.dirty_vertices().tolist() == []

    def test_apply_edges_reports_effective_changes_only(self):
        dyn = DynamicGraph(Graph(5, [(0, 1), (1, 2)]))
        inserted, deleted = dyn.apply_edges(
            insertions=np.array([[0, 1], [3, 4]]),  # (0,1) already present
            deletions=np.array([[1, 2], [2, 3]]),  # (2,3) absent
        )
        assert inserted.tolist() == [[3, 4]]
        assert deleted.tolist() == [[1, 2]]
        assert dyn.num_edges == 2

    def test_apply_edges_delete_then_insert_same_edge(self):
        dyn = DynamicGraph(Graph(3, [(0, 1)]))
        inserted, deleted = dyn.apply_edges(
            insertions=np.array([[0, 1]]), deletions=np.array([[0, 1]])
        )
        assert deleted.tolist() == [[0, 1]]
        assert inserted.tolist() == [[0, 1]]
        assert dyn.has_edge(0, 1)

    def test_auto_compact_on_large_delta(self):
        dyn = DynamicGraph(Graph(10, [(0, 1)]), compact_fraction=0.5)
        dyn.apply_edges(
            insertions=np.array([[i, i + 1] for i in range(1, 9)]),
            deletions=np.empty((0, 2), dtype=np.int64),
        )
        assert dyn.epoch == 1
        assert dyn.pending_edits == 0

    def test_accepts_csr_base(self):
        base = CSRGraph.from_graph(gnm_random_graph(10, 20, seed=3))
        dyn = DynamicGraph(base)
        assert dyn.base is base

    def test_mirrors_reference_graph_under_random_edits(self):
        rng = np.random.default_rng(7)
        reference = gnm_random_graph(12, 20, seed=4)
        dyn = DynamicGraph(reference)
        mirror = reference.copy()
        for step in range(300):
            u, v = int(rng.integers(12)), int(rng.integers(12))
            if u == v:
                continue
            if mirror.has_edge(u, v):
                mirror.remove_edge(u, v)
                dyn.remove_edge(u, v)
            else:
                mirror.add_edge(u, v)
                dyn.add_edge(u, v)
            assert dyn.num_edges == mirror.num_edges
            if step % 60 == 0:
                dyn.compact()
        assert dyn.to_graph() == mirror


class TestStreamSources:
    def test_replay_edge_list_chunks(self, tmp_path):
        graph = gnm_random_graph(30, 60, seed=5)
        path = tmp_path / "g.txt"
        from repro.graph.io import write_edge_list

        write_edge_list(graph, path)
        batches = list(replay_edge_list(path, batch_edges=16))
        assert all(len(b.insertions) <= 16 for b in batches)
        assert sum(len(b.insertions) for b in batches) == 60
        assert sum(b.new_vertices for b in batches) == 30
        replayed = DynamicGraph(Graph(0))
        for batch in batches:
            replayed.add_vertices(batch.new_vertices)
            replayed.apply_edges(batch.insertions, batch.deletions)
        assert replayed.to_graph() == graph

    def test_jsonl_round_trip(self, tmp_path):
        batches = [
            EdgeBatch.make(insertions=[(0, 1)], timestamp=0.0),
            EdgeBatch.make(deletions=[(0, 1)], new_vertices=3, timestamp=1.0),
        ]
        path = tmp_path / "stream.jsonl"
        write_batches_jsonl(batches, path)
        loaded = list(read_batches_jsonl(path))
        assert len(loaded) == 2
        assert loaded[0].insertions.tolist() == [[0, 1]]
        assert loaded[1].deletions.tolist() == [[0, 1]]
        assert loaded[1].new_vertices == 3

    def test_sliding_window_keeps_window_edges(self):
        edges = [(i, i + 1) for i in range(40)]
        window, batches = sliding_window_batches(edges, window=10, batch_edges=5)
        assert len(window) == 10
        dyn = DynamicGraph(Graph(41, window))
        for batch in batches:
            dyn.apply_edges(batch.insertions, batch.deletions)
            assert dyn.num_edges == 10
        assert sorted(dyn.to_graph().edges()) == edges[-10:]

    def test_growth_batches_extend_preferentially(self):
        initial = gnm_random_graph(20, 40, seed=6)
        batches = list(
            growth_batches(
                initial, epochs=3, vertices_per_epoch=5, attachment=2, seed=1
            )
        )
        assert len(batches) == 3
        assert all(b.new_vertices == 5 for b in batches)
        assert all(len(b.insertions) == 10 for b in batches)
        dyn = DynamicGraph(initial)
        for batch in batches:
            dyn.add_vertices(batch.new_vertices)
            dyn.apply_edges(batch.insertions, batch.deletions)
        assert dyn.num_vertices == 35

    def test_churn_batches_preserve_edge_count(self):
        initial = gnm_random_graph(30, 90, seed=7)
        dyn = DynamicGraph(initial)
        for batch in churn_batches(initial, epochs=4, churn_fraction=0.1, seed=2):
            inserted, deleted = dyn.apply_edges(batch.insertions, batch.deletions)
            assert len(inserted) == len(deleted) > 0
        assert dyn.num_edges == 90

    def test_churn_validation(self):
        with pytest.raises(ValueError, match="churn_fraction"):
            list(churn_batches(Graph(5), epochs=1, churn_fraction=0.0))

    def test_make_scenario_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("nope", n=10, epochs=1)


def _run_maintainer(task, initial, batches, **kwargs):
    maintainer = make_maintainer(task, initial, **kwargs)
    maintainer.initialize()
    stats = [maintainer.step(batch) for batch in batches]
    return maintainer, stats


class TestMISMaintainer:
    def test_insert_conflict_evicts_one_endpoint(self):
        graph = path_graph(4)  # MIS of 0-1-2-3 under any solver
        maintainer = make_maintainer(
            "mis", graph, backend="greedy", seed=0, resolve_fraction=1.0
        )
        maintainer.initialize()
        chosen = set(maintainer.solution())
        pair = sorted(chosen)[:2]
        stats = maintainer.step(EdgeBatch.make(insertions=[tuple(pair)]))
        assert stats.action == "repair"
        current = maintainer.graph.to_graph()
        assert is_maximal_independent_set(current, set(maintainer.solution()))

    def test_delete_restores_maximality(self):
        graph = star_graph(5)  # center 0, leaves 1..5
        maintainer = make_maintainer("mis", graph, backend="greedy", seed=0)
        maintainer.initialize()
        # Deleting a center-leaf edge must free that leaf (or keep it
        # dominated) while staying maximal.
        maintainer.step(EdgeBatch.make(deletions=[(0, 1)]))
        current = maintainer.graph.to_graph()
        assert is_maximal_independent_set(current, set(maintainer.solution()))

    def test_growth_covers_new_vertices(self):
        graph = gnm_random_graph(20, 40, seed=8)
        maintainer, stats = _run_maintainer(
            "mis",
            graph,
            growth_batches(graph, epochs=2, vertices_per_epoch=4, seed=3),
            seed=0,
        )
        assert maintainer.graph.num_vertices == 28
        current = maintainer.graph.to_graph()
        assert is_maximal_independent_set(current, set(maintainer.solution()))

    def test_resolve_fraction_zero_always_resolves(self):
        graph = gnm_random_graph(20, 40, seed=9)
        maintainer, stats = _run_maintainer(
            "mis",
            graph,
            churn_batches(graph, epochs=2, churn_fraction=0.05, seed=4),
            resolve_fraction=0.0,
            seed=0,
        )
        assert all(s.action == "resolve" for s in stats)
        assert maintainer.epochs_resolved == 2

    def test_step_before_initialize_raises(self):
        maintainer = make_maintainer("mis", Graph(4))
        with pytest.raises(RuntimeError, match="initialize"):
            maintainer.step(EdgeBatch.make())


class TestMatchingMaintainer:
    def test_deleted_matched_edge_releases_and_rematches(self):
        graph = path_graph(6)
        maintainer = make_maintainer(
            "matching", graph, backend="greedy", seed=0, resolve_fraction=1.0
        )
        maintainer.initialize()
        matched = maintainer.matched_edges()
        stats = maintainer.step(EdgeBatch.make(deletions=[matched[0]]))
        assert stats.action == "repair"
        current = maintainer.graph.to_graph()
        assert is_maximal_matching(current, maintainer.matched_edges())

    def test_inserted_free_free_edge_gets_matched(self):
        # 0-1 matched, 2 and 3 isolated; inserting (2,3) must match it.
        graph = Graph(4, [(0, 1)])
        maintainer = make_maintainer("matching", graph, backend="greedy", seed=0)
        maintainer.initialize()
        maintainer.step(EdgeBatch.make(insertions=[(2, 3)]))
        assert (2, 3) in maintainer.matched_edges()

    def test_augmenting_path_recovers_size(self):
        # Path 0-1-2-3 with 1-2 matched; deleting nothing, inserting
        # nothing — instead craft: matching {1,2}; insert (0,1),(2,3)
        # makes {1,2} augmentable to {(0,1),(2,3)}.
        graph = Graph(4, [(1, 2)])
        maintainer = make_maintainer(
            "matching", graph, backend="greedy", seed=0, resolve_fraction=1.0
        )
        maintainer.initialize()
        assert maintainer.size() == 1
        stats = maintainer.step(EdgeBatch.make(insertions=[(0, 1), (2, 3)]))
        assert maintainer.size() == 2
        assert stats.extras["augmented"] >= 1
        current = maintainer.graph.to_graph()
        assert is_maximal_matching(current, maintainer.matched_edges())

    def test_churn_keeps_matching_maximal(self):
        graph = gnm_random_graph(40, 120, seed=10)
        maintainer, stats = _run_maintainer(
            "matching",
            graph,
            churn_batches(graph, epochs=5, churn_fraction=0.05, seed=5),
            seed=0,
        )
        current = maintainer.graph.to_graph()
        assert is_maximal_matching(current, maintainer.matched_edges())


class TestVertexCoverMaintainer:
    def test_cover_tracks_matching_endpoints(self):
        graph = gnm_random_graph(30, 80, seed=11)
        maintainer, _ = _run_maintainer(
            "vertex_cover",
            graph,
            churn_batches(graph, epochs=4, churn_fraction=0.05, seed=6),
            seed=0,
        )
        current = maintainer.graph.to_graph()
        cover = set(maintainer.solution())
        assert is_vertex_cover(current, cover)
        assert len(cover) == 2 * len(maintainer.matched_edges())


class TestFractionalMaintainer:
    def test_feasible_and_saturated_after_churn(self):
        graph = gnm_random_graph(30, 90, seed=12)
        maintainer, _ = _run_maintainer(
            "fractional_matching",
            graph,
            churn_batches(graph, epochs=5, churn_fraction=0.05, seed=7),
            seed=0,
        )
        current = maintainer.graph.to_graph()
        weights = {
            (int(u), int(v)): float(x) for u, v, x in maintainer.solution()
        }
        assert is_valid_fractional_matching(current, weights, tolerance=1e-6)
        # Every edge must see a saturated endpoint — the 2-approx invariant.
        loads = maintainer.loads
        for u, v in current.edges():
            assert max(loads[u], loads[v]) >= 1.0 - 1e-6

    def test_deletion_drops_weight_then_resaturates(self):
        graph = path_graph(3)  # edges (0,1),(1,2): loads cap at vertex 1
        maintainer = make_maintainer(
            "fractional_matching", graph, backend="central", seed=0
        )
        maintainer.initialize()
        before = maintainer.total_weight()
        maintainer.step(EdgeBatch.make(deletions=[(0, 1)]))
        current = maintainer.graph.to_graph()
        weights = {
            (int(u), int(v)): float(x) for u, v, x in maintainer.solution()
        }
        assert is_valid_fractional_matching(current, weights, tolerance=1e-6)
        assert maintainer.total_weight() == pytest.approx(1.0)
        assert before >= 1.0 - 1e-9

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="no maintainer"):
            make_maintainer("weighted_matching", Graph(4))


class TestSolveStream:
    def test_report_round_trip_and_schema(self):
        initial, batches = make_scenario("churn", n=40, epochs=3, seed=0)
        report = solve_stream("mis", initial, batches, seed=0, verify=True)
        clone = StreamReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        assert clone.ok and clone.size == report.size
        payload = report.to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            StreamReport.from_dict(payload)

    def test_every_epoch_certified(self):
        initial, batches = make_scenario("churn", n=60, epochs=4, seed=1)
        report = solve_stream("matching", initial, batches, seed=1, verify=True)
        assert len(report.epochs) == 4
        assert all(r.verification.get("ok") for r in report.epochs)

    def test_differential_ratio_recorded(self):
        initial, batches = make_scenario("churn", n=60, epochs=3, seed=2)
        report = solve_stream(
            "matching", initial, batches, seed=2, differential_every=1
        )
        ratios = [r.differential_ratio for r in report.epochs]
        assert all(ratio is not None for ratio in ratios)
        assert report.ok

    def test_counts_and_config_recorded(self):
        initial, batches = make_scenario("growth", n=30, epochs=3, seed=3)
        report = solve_stream(
            "mis", initial, batches, seed=3, resolve_fraction=0.5
        )
        assert report.epochs_repaired + report.epochs_resolved == 3
        assert report.config["resolve_fraction"] == 0.5
        assert report.n_final > report.n_initial

    def test_solution_matches_final_graph(self):
        initial, batches = make_scenario("sliding_window", n=50, epochs=3, seed=4)
        report = solve_stream("mis", initial, batches, seed=4)
        # Rebuild the final graph independently and check the solution.
        dyn = DynamicGraph(initial)
        _, replay = make_scenario("sliding_window", n=50, epochs=3, seed=4)
        for batch in replay:
            dyn.add_vertices(batch.new_vertices)
            dyn.apply_edges(batch.insertions, batch.deletions)
        assert is_maximal_independent_set(
            dyn.to_graph(), set(report.solution)
        )

    def test_invalid_differential_every(self):
        with pytest.raises(ValueError, match="differential_every"):
            solve_stream("mis", Graph(4), [], differential_every=-1)

    def test_facade_reexports(self):
        from repro.api import solve_stream as api_solve_stream
        from repro import solve_stream as top_solve_stream

        assert api_solve_stream is solve_stream
        assert top_solve_stream is solve_stream


class TestStreamCLI:
    def test_single_run_exits_zero(self, capsys):
        status = stream_cli(
            [
                "--task",
                "mis",
                "--scenario",
                "churn",
                "--n",
                "60",
                "--epochs",
                "3",
                "--verify",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "stream: mis on churn" in out

    def test_jsonl_output(self, tmp_path, capsys):
        path = tmp_path / "report.jsonl"
        status = stream_cli(
            [
                "--task",
                "matching",
                "--n",
                "40",
                "--epochs",
                "2",
                "--jsonl",
                str(path),
            ]
        )
        assert status == 0
        report = StreamReport.from_json(path.read_text().strip())
        assert report.task == "matching"

    def test_replay_jsonl_stream(self, tmp_path, capsys):
        batches = [
            EdgeBatch.make(insertions=[(0, 1), (2, 3)]),
            EdgeBatch.make(deletions=[(0, 1)]),
        ]
        path = tmp_path / "updates.jsonl"
        write_batches_jsonl(batches, path)
        status = stream_cli(
            ["--task", "mis", "--replay", str(path), "--n", "4", "--verify"]
        )
        assert status == 0


class TestStreamReportIO:
    def test_read_stream_jsonl(self, tmp_path):
        initial, batches = make_scenario("churn", n=30, epochs=2, seed=5)
        report = solve_stream("mis", initial, batches, seed=5)
        path = tmp_path / "streams.jsonl"
        path.write_text(report.to_json() + "\n" + report.to_json() + "\n")
        from repro.stream import read_stream_jsonl

        loaded = read_stream_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0].to_json() == report.to_json()

    def test_differential_band_violation_fails_epoch(self, monkeypatch):
        # An impossible band (max <= 0.5 * min) marks every differential
        # epoch failed — exercising the failure recording path.
        import repro.verify

        monkeypatch.setattr(repro.verify, "agreement_band", lambda task: 0.5)
        initial, batches = make_scenario("churn", n=40, epochs=2, seed=6)
        report = solve_stream(
            "matching", initial, batches, seed=6, differential_every=1
        )
        assert not report.ok
        names = [
            check["name"]
            for record in report.epochs
            for check in record.verification.get("checks", [])
        ]
        assert "differential_band" in names


class TestDynamicGraphValidation:
    def test_compact_fraction_must_be_positive(self):
        with pytest.raises(ValueError, match="compact_fraction"):
            DynamicGraph(Graph(3), compact_fraction=0.0)

    def test_edges_iterates_current_graph(self):
        dyn = DynamicGraph(Graph(4, [(0, 1), (2, 3)]))
        dyn.remove_edge(2, 3)
        dyn.add_edge(1, 2)
        assert list(dyn.edges()) == [(0, 1), (1, 2)]

    def test_repr_mentions_pending(self):
        dyn = DynamicGraph(Graph(3, [(0, 1)]))
        dyn.add_edge(1, 2)
        assert "pending=1" in repr(dyn)

    def test_add_vertices_negative_rejected(self):
        with pytest.raises(ValueError, match="count"):
            DynamicGraph(Graph(3)).add_vertices(-1)

    def test_apply_edges_rejects_bad_endpoints_on_clean_path(self):
        dyn = DynamicGraph(Graph(3, [(0, 1)]))
        with pytest.raises(ValueError, match="out of range"):
            dyn.apply_edges(np.array([[0, 7]]), np.empty((0, 2), np.int64))
        with pytest.raises(ValueError, match="self-loop"):
            dyn.apply_edges(np.empty((0, 2), np.int64), np.array([[1, 1]]))


class TestSourceValidation:
    def test_growth_requires_attachment_headroom(self):
        with pytest.raises(ValueError, match="initial graph"):
            list(growth_batches(Graph(2), epochs=1, vertices_per_epoch=1, attachment=3))
        with pytest.raises(ValueError, match="attachment"):
            list(
                growth_batches(
                    gnm_random_graph(10, 15, seed=1),
                    epochs=1,
                    vertices_per_epoch=1,
                    attachment=0,
                )
            )

    def test_sliding_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            sliding_window_batches([(0, 1)], window=0, batch_edges=1)

    def test_scenario_epochs_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            make_scenario("churn", n=10, epochs=0)


class TestCheckMatrix:
    def test_tiny_check_matrix_exits_zero(self, monkeypatch, capsys):
        import repro.stream.__main__ as cli

        monkeypatch.setattr(cli, "CHECK_TASKS", ("mis", "matching"))
        monkeypatch.setattr(cli, "CHECK_SIZES", (32,))
        monkeypatch.setattr(cli, "CHECK_SEEDS", (0,))
        monkeypatch.setattr(cli, "CHECK_EPOCHS", 2)
        assert cli.main(["--check"]) == 0
        assert "stream conformance" in capsys.readouterr().out

    def test_tiny_check_writes_jsonl(self, monkeypatch, tmp_path):
        import repro.stream.__main__ as cli

        monkeypatch.setattr(cli, "CHECK_TASKS", ("mis",))
        monkeypatch.setattr(cli, "CHECK_SIZES", (32,))
        monkeypatch.setattr(cli, "CHECK_SEEDS", (0,))
        monkeypatch.setattr(cli, "CHECK_EPOCHS", 2)
        monkeypatch.setattr(cli, "SCENARIOS", ("churn",))
        path = tmp_path / "check.jsonl"
        assert cli.main(["--check", "--jsonl", str(path)]) == 0
        from repro.stream import read_stream_jsonl

        loaded = read_stream_jsonl(path)
        assert len(loaded) == 1 and loaded[0].ok


class TestReviewRegressions:
    """Pins for bugs found in review: each was a live failure mode."""

    def test_growth_rejects_endpoint_poor_graph(self):
        # Only two distinct endpoints but attachment=3: must raise, not
        # spin forever in the distinct-target sampling loop.
        with pytest.raises(ValueError, match="distinct"):
            list(
                growth_batches(
                    Graph(10, [(0, 1)]),
                    epochs=1,
                    vertices_per_epoch=1,
                    attachment=3,
                )
            )

    def test_jsonl_batches_gzip_round_trip(self, tmp_path):
        batches = [EdgeBatch.make(insertions=[(0, 1)], new_vertices=2)]
        path = tmp_path / "stream.jsonl.gz"
        write_batches_jsonl(batches, path)
        loaded = list(read_batches_jsonl(path))
        assert loaded[0].insertions.tolist() == [[0, 1]]
        assert loaded[0].new_vertices == 2

    def test_cli_edge_list_replay_has_no_phantom_vertices(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        graph = gnm_random_graph(30, 60, seed=20)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        out = tmp_path / "report.jsonl"
        status = stream_cli(
            ["--task", "mis", "--replay", str(path), "--jsonl", str(out)]
        )
        assert status == 0
        report = StreamReport.from_json(out.read_text().strip())
        # Default --n is 1000; the file's universe (30) must win.
        assert report.n_final == 30

    def test_sliding_window_batch_larger_than_window_rejected(self):
        with pytest.raises(ValueError, match="must not exceed window"):
            sliding_window_batches([(0, 1)] * 30, window=10, batch_edges=20)

    def test_epoch_stats_count_batches_not_compactions(self):
        # A caller-supplied overlay with aggressive auto-compaction must
        # not skew the reported epoch numbers.
        dyn = DynamicGraph(gnm_random_graph(12, 6, seed=21), compact_fraction=0.01)
        maintainer = make_maintainer("mis", dyn, backend="greedy", seed=0)
        maintainer.initialize()
        epochs = [
            maintainer.step(EdgeBatch.make(insertions=[(0, i + 1)])).epoch
            for i in range(3)
        ]
        assert epochs == [1, 2, 3]


class TestSecondReviewRegressions:
    def test_edge_batch_rejects_oversized_vertex_ids(self):
        # (5, 2^32) would silently wrap into edge (5, 0) in key packing.
        with pytest.raises(ValueError, match="2\\^31"):
            EdgeBatch.make(insertions=[(5, 2**32)])

    def test_apply_edges_validates_on_dirty_overlay_too(self):
        dyn = DynamicGraph(Graph(10, [(0, 1)]))
        dyn.add_edge(1, 2)  # overlay now dirty: per-edge path
        with pytest.raises(ValueError, match="out of range"):
            dyn.apply_edges(np.empty((0, 2), np.int64), np.array([[0, 99]]))
        with pytest.raises(ValueError, match="self-loop"):
            dyn.apply_edges(np.array([[3, 3]]), np.empty((0, 2), np.int64))

    @pytest.mark.parametrize(
        "task", ["matching", "vertex_cover", "fractional_matching"]
    )
    def test_step_resolve_path_per_task(self, task):
        # resolve_fraction=0.0 forces the mid-stream fallback branch the
        # conformance matrix may not hit for every task.
        graph = gnm_random_graph(30, 90, seed=22)
        maintainer, stats = _run_maintainer(
            task,
            graph,
            churn_batches(graph, epochs=2, churn_fraction=0.05, seed=8),
            resolve_fraction=0.0,
            seed=0,
        )
        assert all(s.action == "resolve" for s in stats)
        current = maintainer.graph.to_graph()
        if task == "matching":
            assert is_maximal_matching(current, maintainer.matched_edges())
        elif task == "vertex_cover":
            assert is_vertex_cover(current, set(maintainer.solution()))
        else:
            weights = {
                (int(u), int(v)): float(x) for u, v, x in maintainer.solution()
            }
            assert is_valid_fractional_matching(current, weights, tolerance=1e-6)
