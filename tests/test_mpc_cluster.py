"""Unit tests for the MPC substrate: machines, cluster, memory accounting."""

import pytest

from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.errors import MemoryExceededError, ProtocolError
from repro.mpc.machine import Machine
from repro.mpc.words import (
    WORDS_PER_EDGE,
    edge_list_words,
    edge_words,
    id_words,
    weighted_edge_words,
)
from repro.utils.trace import Trace


class TestWords:
    def test_units(self):
        assert id_words(3) == 3
        assert edge_words(3) == 6
        assert edge_list_words([(0, 1), (2, 3)]) == 4
        assert weighted_edge_words(2) == 6


class TestMachine:
    def test_store_load_release(self):
        m = Machine(0, capacity_words=10)
        m.store("a", [1, 2], words=4)
        assert m.load("a") == [1, 2]
        assert m.used_words == 4
        m.release("a")
        assert m.used_words == 0
        assert m.peak_words == 4

    def test_capacity_enforced(self):
        m = Machine(0, capacity_words=10)
        with pytest.raises(MemoryExceededError) as excinfo:
            m.store("big", None, words=11, context="test-step")
        assert excinfo.value.machine_id == 0
        assert "test-step" in str(excinfo.value)

    def test_replacement_releases_first(self):
        m = Machine(0, capacity_words=10)
        m.store("a", None, words=8)
        m.store("a", None, words=9)  # would overflow if not released first
        assert m.used_words == 9

    def test_clear(self):
        m = Machine(0, capacity_words=10)
        m.store("a", None, words=5)
        m.clear()
        assert m.used_words == 0
        assert not m.has("a")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Machine(0, capacity_words=0)

    def test_negative_words_rejected(self):
        m = Machine(0, capacity_words=10)
        with pytest.raises(ValueError):
            m.store("a", None, words=-1)


class TestCluster:
    def test_round_counting(self):
        cluster = MPCCluster(4, words_per_machine=100)
        assert cluster.rounds == 0
        cluster.charge_rounds(2, "setup")
        assert cluster.rounds == 2

    def test_exchange_delivers_and_counts(self):
        cluster = MPCCluster(3, words_per_machine=100)
        inboxes = cluster.exchange(
            {0: [Message(destination=2, words=10, payload="hi")]}
        )
        assert cluster.rounds == 1
        assert inboxes[2][0].payload == "hi"

    def test_exchange_outbox_limit(self):
        cluster = MPCCluster(2, words_per_machine=10)
        with pytest.raises(MemoryExceededError):
            cluster.exchange({0: [Message(destination=1, words=11, payload=None)]})

    def test_exchange_inbox_limit(self):
        cluster = MPCCluster(3, words_per_machine=10)
        with pytest.raises(MemoryExceededError):
            cluster.exchange(
                {
                    0: [Message(destination=2, words=8, payload=None)],
                    1: [Message(destination=2, words=8, payload=None)],
                }
            )

    def test_invalid_machine_id(self):
        cluster = MPCCluster(2, words_per_machine=10)
        with pytest.raises(ProtocolError):
            cluster.machine(2)
        with pytest.raises(ProtocolError):
            cluster.exchange({0: [Message(destination=5, words=1, payload=None)]})

    def test_ship_to_machine(self):
        cluster = MPCCluster(2, words_per_machine=10)
        cluster.ship_to_machine(1, "data", [1, 2, 3], words=6)
        assert cluster.rounds == 1
        assert cluster.machine(1).load("data") == [1, 2, 3]

    def test_broadcast_validates_size(self):
        cluster = MPCCluster(2, words_per_machine=10)
        cluster.broadcast(10)
        with pytest.raises(MemoryExceededError):
            cluster.broadcast(11)

    def test_peak_words(self):
        cluster = MPCCluster(2, words_per_machine=10)
        cluster.ship_to_machine(0, "a", None, words=7)
        cluster.release_all()
        assert cluster.peak_words() == 7

    def test_trace_records_charges(self):
        trace = Trace()
        cluster = MPCCluster(2, words_per_machine=10, trace=trace)
        cluster.charge_rounds(1, "alpha")
        cluster.broadcast(5, context="beta")
        reasons = trace.values("rounds_charged", "reason")
        assert reasons == ["alpha", "beta"]

    def test_negative_round_charge_rejected(self):
        cluster = MPCCluster(1, words_per_machine=10)
        with pytest.raises(ValueError):
            cluster.charge_rounds(-1, "x")

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError):
            MPCCluster(0, words_per_machine=10)
