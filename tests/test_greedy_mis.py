"""Unit tests for the sequential randomized greedy MIS process."""

import pytest

from repro.core.greedy_mis import (
    greedy_mis,
    greedy_mis_on_prefix,
    randomized_greedy_mis,
    residual_after_prefix,
)
from repro.graph.generators import gnp_random_graph, path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.properties import is_maximal_independent_set


class TestGreedy:
    def test_path_first_order(self):
        g = path_graph(5)
        assert greedy_mis(g, [0, 1, 2, 3, 4]) == {0, 2, 4}

    def test_star_center_first(self):
        g = star_graph(5)
        assert greedy_mis(g, list(range(6))) == {0}

    def test_star_leaf_first(self):
        g = star_graph(5)
        assert greedy_mis(g, [1, 2, 3, 4, 5, 0]) == {1, 2, 3, 4, 5}

    def test_invalid_order_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            greedy_mis(g, [0, 1])
        with pytest.raises(ValueError):
            greedy_mis(g, [0, 0, 1])

    def test_always_maximal(self):
        g = gnp_random_graph(80, 0.1, seed=1)
        for seed in range(5):
            mis = randomized_greedy_mis(g, seed=seed)
            assert is_maximal_independent_set(g, mis)

    def test_deterministic_under_seed(self):
        g = gnp_random_graph(60, 0.2, seed=2)
        assert randomized_greedy_mis(g, seed=7) == randomized_greedy_mis(g, seed=7)


class TestPrefixSimulation:
    def test_prefix_agrees_with_sequential(self):
        """Batched prefix processing must replay sequential greedy exactly."""
        g = gnp_random_graph(100, 0.08, seed=3)
        ranks = list(range(100))
        import random

        random.Random(5).shuffle(ranks)
        order = sorted(g.vertices(), key=lambda v: ranks[v])
        sequential = greedy_mis(g, order)

        # Replay in three prefix batches.
        residual = g.copy()
        decided = set()
        batched = set()
        for cutoff in (30, 70, 100):
            prefix = [
                v
                for v in g.vertices()
                if ranks[v] < cutoff and v not in decided
            ]
            new_mis = greedy_mis_on_prefix(residual, ranks, prefix)
            for v in sorted(new_mis, key=lambda x: ranks[x]):
                batched.add(v)
                removed = residual.remove_closed_neighborhood(v)
                decided |= removed
            decided.update(prefix)
        assert batched == sequential

    def test_residual_after_prefix_degree_drops(self):
        g = gnp_random_graph(200, 0.2, seed=4)
        ranks = list(range(200))
        import random

        random.Random(9).shuffle(ranks)
        residual, mis = residual_after_prefix(g, ranks, up_to_rank=100)
        # Lemma 3.1: degrees shrink markedly after half the ranks.
        assert residual.max_degree() < g.max_degree()
        assert len(mis) > 0

    def test_residual_after_all_ranks_is_empty(self):
        g = gnp_random_graph(50, 0.2, seed=5)
        ranks = list(range(50))
        residual, mis = residual_after_prefix(g, ranks, up_to_rank=50)
        assert residual.num_edges == 0
        assert is_maximal_independent_set(g, mis)
