"""Unit tests for the FractionalMatching container."""

import pytest

from repro.core.fractional import FractionalMatching
from repro.graph.graph import Graph


@pytest.fixture
def square_fm() -> FractionalMatching:
    g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    weights = {(0, 1): 0.5, (1, 2): 0.4, (2, 3): 0.5, (0, 3): 0.3}
    return FractionalMatching(graph=g, weights=weights, vertex_cover={0, 2})


class TestFractionalMatching:
    def test_weight(self, square_fm):
        assert square_fm.weight() == pytest.approx(1.7)

    def test_vertex_loads(self, square_fm):
        loads = square_fm.vertex_loads()
        assert loads[0] == pytest.approx(0.8)
        assert loads[1] == pytest.approx(0.9)
        assert loads[2] == pytest.approx(0.9)
        assert loads[3] == pytest.approx(0.8)

    def test_is_valid(self, square_fm):
        assert square_fm.is_valid()

    def test_invalid_when_overloaded(self):
        g = Graph(3, [(0, 1), (1, 2)])
        fm = FractionalMatching(graph=g, weights={(0, 1): 0.7, (1, 2): 0.7})
        assert not fm.is_valid()

    def test_invalid_on_non_edge(self):
        g = Graph(3, [(0, 1)])
        fm = FractionalMatching(graph=g, weights={(0, 2): 0.1})
        assert not fm.is_valid()

    def test_heavy_vertices(self, square_fm):
        assert square_fm.heavy_vertices(0.85) == {1, 2}
        assert square_fm.heavy_vertices(0.95) == set()

    def test_restricted_to(self, square_fm):
        sub = square_fm.restricted_to({0, 1, 2})
        assert set(sub.weights) == {(0, 1), (1, 2)}
        assert sub.vertex_cover == {0, 2}
