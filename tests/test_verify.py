"""Tests for the ``repro.verify`` subsystem.

``TestEveryRegistryPair`` is the conformance anchor: every registered
(task, backend) pair runs under ``solve(..., verify=True)`` and must
produce a passing certificate whose round/memory/communication budget
audits are recorded in the RunReport.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunReport, read_jsonl, registry, solve
from repro.graph.generators import (
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.verify import (
    BudgetPolicy,
    Certificate,
    CheckResult,
    agreement_band,
    certify_report,
    differential_sweep,
    loglog2,
)
from repro.verify import checkers, oracles
from repro.verify.__main__ import main as verify_cli
from repro.verify.differential import FAMILIES, attach_weights, quality_of


@pytest.fixture(scope="module")
def small_gnp() -> Graph:
    return gnp_random_graph(40, 0.15, seed=3)


@pytest.fixture(scope="module")
def tiny_gnp() -> Graph:
    return gnp_random_graph(10, 0.3, seed=5)


# ---------------------------------------------------------------------------
# the full (task, backend) matrix — the conformance anchor
# ---------------------------------------------------------------------------


class TestEveryRegistryPair:
    BUDGET_CHECKS = {"rounds_budget", "memory_budget", "communication_budget"}

    @pytest.mark.parametrize(
        "task,backend", registry.pairs(), ids=lambda value: str(value)
    )
    def test_differential_oracle_certificate(self, task, backend, small_gnp):
        report = solve(task, small_gnp, backend=backend, seed=7, verify=True)
        assert report.verification, "certificate missing from RunReport"
        assert report.verified, (
            f"certificate failed: "
            f"{[c for c in report.verification['checks'] if not c['passed']]}"
        )
        recorded = {check["name"] for check in report.verification["checks"]}
        assert self.BUDGET_CHECKS <= recorded
        # The certificate must survive serialization round trips.
        loaded = RunReport.from_json(report.to_json())
        assert loaded.verification == report.verification
        assert loaded.verified

    @pytest.mark.parametrize(
        "task,backend", registry.pairs(), ids=lambda value: str(value)
    )
    def test_tiny_instance_engages_exact_oracles(self, task, backend, tiny_gnp):
        # n=10 is below every oracle cap: ratio checks run for real.
        report = solve(task, tiny_gnp, backend=backend, seed=11, verify=True)
        assert report.verified
        details = {
            check["name"]: check for check in report.verification["checks"]
        }
        if task in ("matching", "one_plus_eps_matching"):
            ratio_name = (
                "matching_ratio" if task == "matching" else "one_plus_eps_ratio"
            )
            assert not details[ratio_name]["detail"].startswith("skipped")
        if task == "vertex_cover":
            assert not details["cover_ratio"]["detail"].startswith("skipped")
        if task == "weighted_matching":
            assert not details["weighted_ratio"]["detail"].startswith("skipped")


# ---------------------------------------------------------------------------
# checkers
# ---------------------------------------------------------------------------


class TestCheckers:
    def test_mis_checks(self):
        graph = path_graph(4)
        assert all(c.passed for c in checkers.check_mis(graph, {0, 2}))
        assert not all(c.passed for c in checkers.check_mis(graph, {0, 1}))
        # Independent but not maximal.
        results = {c.name: c.passed for c in checkers.check_mis(graph, {0})}
        assert results["mis_independent"] and not results["mis_maximal"]

    def test_matching_checks(self):
        graph = path_graph(5)
        assert checkers.check_matching(graph, [(0, 1), (2, 3)])[0].passed
        assert not checkers.check_matching(graph, [(0, 1), (1, 2)])[0].passed
        assert not checkers.check_matching(graph, [(0, 2)])[0].passed

    def test_cover_checks(self):
        graph = path_graph(4)
        assert checkers.check_vertex_cover(graph, {1, 2})[0].passed
        assert not checkers.check_vertex_cover(graph, {0})[0].passed

    def test_fractional_checks(self):
        graph = path_graph(3)
        good = {(0, 1): 0.5, (1, 2): 0.5}
        assert checkers.check_fractional_matching(graph, good)[0].passed
        bad = {(0, 1): 0.8, (1, 2): 0.8}
        assert not checkers.check_fractional_matching(graph, bad)[0].passed

    def test_matching_ratio_flags_degenerate_output(self):
        graph = path_graph(9)  # nu = 4
        empty = checkers.check_matching_ratio(graph, [], 2.5)
        assert not empty[0].passed
        maximal = checkers.check_matching_ratio(graph, [(0, 1), (4, 5)], 2.5)
        assert maximal[0].passed

    def test_ratio_skips_above_cap(self):
        big = gnp_random_graph(500, 0.01, seed=1)
        result = checkers.check_matching_ratio(big, [], 2.5)
        assert result[0].passed and "skipped" in result[0].detail

    def test_fractional_bands_heavy_removal_discount(self):
        graph = star_graph(12)  # nu = 1
        empty: dict = {}
        strict = checkers.check_fractional_bands(graph, empty, 2.5)
        assert not strict[1].passed  # weight 0 vs nu=1
        discounted = checkers.check_fractional_bands(
            graph, empty, 2.5, slack_vertices=1
        )
        assert discounted[1].passed  # the removed center accounts for nu

    def test_weighted_ratio(self):
        weighted = WeightedGraph(4, [(0, 1, 10.0), (2, 3, 1.0), (1, 2, 0.5)])
        good = checkers.check_weighted_matching_ratio(
            weighted, [(0, 1), (2, 3)], 2.0
        )
        assert good[0].passed
        bad = checkers.check_weighted_matching_ratio(weighted, [(1, 2)], 2.0)
        assert not bad[0].passed

    def test_certify_solution_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            checkers.certify_solution("nope", path_graph(3), [])


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


class TestOracles:
    def test_matching_oracle(self):
        assert oracles.maximum_matching_size(path_graph(5)) == 2
        assert oracles.maximum_matching_size(path_graph(5), cap=3) is None

    def test_cover_oracle(self):
        assert oracles.minimum_vertex_cover_size(star_graph(6)) == 1
        assert oracles.minimum_vertex_cover_size(gnp_random_graph(50, 0.1)) is None

    def test_weighted_oracle(self):
        weighted = WeightedGraph(4, [(0, 1, 5.0), (1, 2, 9.0), (2, 3, 5.0)])
        assert oracles.maximum_weight_matching_weight(weighted) == 10.0
        big = WeightedGraph(40, [(i, i + 1, 1.0) for i in range(30)])
        assert oracles.maximum_weight_matching_weight(big) is None


# ---------------------------------------------------------------------------
# budgets
# ---------------------------------------------------------------------------


def _report(**overrides) -> RunReport:
    payload = dict(
        task="mis",
        backend="mpc",
        n=256,
        num_edges=512,
        solution_kind="vertex_set",
        solution=[],
        rounds=9,
        max_machine_words=0,
        total_comm_words=0,
    )
    payload.update(overrides)
    return RunReport(**payload)


class TestBudgets:
    def test_loglog2_clamps(self):
        assert loglog2(0) == loglog2(4) == 1.0
        assert loglog2(256) == 3.0
        assert loglog2(65536) == 4.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BudgetPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            BudgetPolicy(alpha=1.5)
        with pytest.raises(ValueError):
            BudgetPolicy(loglog_factor=-1.0)

    def test_rounds_budget_kinds(self):
        policy = BudgetPolicy(loglog_factor=8.0, log_factor=4.0, rounds_offset=8.0)
        assert policy.rounds_budget(256, "loglog", 1.0) == pytest.approx(32.0)
        assert policy.rounds_budget(256, "log", 1.0) == pytest.approx(40.0)
        assert policy.rounds_budget(256, "none") is None
        with pytest.raises(ValueError):
            policy.rounds_budget(256, "quadratic")

    def test_memory_budget_alpha(self):
        policy = BudgetPolicy(alpha=1.0, memory_factor=8.0)
        assert policy.memory_budget(100) == 800
        sublinear = BudgetPolicy(alpha=0.5, memory_factor=8.0)
        assert sublinear.memory_budget(10_000) == 800
        assert BudgetPolicy().memory_budget(1) == 64  # min_words floor

    def test_audit_rounds_pass_and_fail(self):
        from repro.verify import audit_budgets

        ok = audit_budgets(_report(rounds=9), rounds_bound="loglog")
        by_name = {check.name: check for check in ok}
        assert by_name["rounds_budget"].passed
        assert by_name["rounds_budget"].bound == pytest.approx(32.0)

        blown = audit_budgets(_report(rounds=900), rounds_bound="loglog")
        assert not {c.name: c for c in blown}["rounds_budget"].passed

        unclaimed = audit_budgets(_report(rounds=900), rounds_bound="none")
        unclaimed_check = {c.name: c for c in unclaimed}["rounds_budget"]
        assert unclaimed_check.passed
        assert "no round bound claimed" in unclaimed_check.detail

    def test_audit_memory_pass_and_fail(self):
        from repro.verify import audit_budgets

        ok = audit_budgets(_report(max_machine_words=1000), rounds_bound="loglog")
        assert {c.name: c for c in ok}["memory_budget"].passed
        blown = audit_budgets(
            _report(max_machine_words=5000), rounds_bound="loglog"
        )
        assert not {c.name: c for c in blown}["memory_budget"].passed

    def test_audit_communication(self):
        from repro.verify import audit_budgets

        ok = audit_budgets(
            _report(rounds=4, total_comm_words=1000), rounds_bound="loglog"
        )
        assert {c.name: c for c in ok}["communication_budget"].passed
        blown = audit_budgets(
            _report(rounds=1, total_comm_words=10**9), rounds_bound="loglog"
        )
        assert not {c.name: c for c in blown}["communication_budget"].passed


# ---------------------------------------------------------------------------
# certificate model
# ---------------------------------------------------------------------------


class TestCertificate:
    def test_round_trip_and_failures(self):
        cert = Certificate(
            checks=[
                CheckResult(name="a", passed=True),
                CheckResult(name="b", passed=False, detail="boom", observed=2.0),
            ]
        )
        assert not cert.ok
        assert [c.name for c in cert.failures()] == ["b"]
        clone = Certificate.from_dict(json.loads(json.dumps(cert.to_dict())))
        assert clone.to_dict() == cert.to_dict()

    def test_certify_report_resolves_entry(self, small_gnp):
        report = solve("mis", small_gnp, backend="greedy", seed=1)
        certificate = certify_report(small_gnp, report)
        assert certificate.ok


# ---------------------------------------------------------------------------
# differential harness
# ---------------------------------------------------------------------------


class TestDifferential:
    def test_small_sweep_passes(self):
        outcome = differential_sweep(
            ["mis", "matching"],
            "all",
            families=("gnp_sparse",),
            sizes=(24,),
            seeds=(0,),
        )
        assert outcome.ok, [f.to_dict() for f in outcome.failures]
        assert outcome.runs == len(outcome.reports)
        rows = outcome.summary_rows()
        assert all(row["verified"] == row["runs"] for row in rows)

    def test_tight_policy_fails_budgets(self):
        tight = BudgetPolicy(loglog_factor=1e-6, rounds_offset=0.0, log_factor=1e-6)
        outcome = differential_sweep(
            ["mis"],
            ["mpc"],
            families=("gnp_sparse",),
            sizes=(24,),
            seeds=(0,),
            policy=tight,
        )
        assert not outcome.ok
        assert all(f.kind == "certificate" for f in outcome.failures)
        assert any("rounds_budget" in f.detail for f in outcome.failures)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown families"):
            differential_sweep(families=("moebius",), sizes=(8,), seeds=(0,))

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown tasks"):
            differential_sweep(["typo_task"], sizes=(8,), seeds=(0,))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backends"):
            differential_sweep(["mis"], ["mpc", "bogus"], sizes=(8,), seeds=(0,))

    def test_cli_exit_two_on_unknown_task(self, capsys):
        assert verify_cli(["--tasks", "typo_task"]) == 2
        assert "unknown tasks" in capsys.readouterr().err

    def test_band_and_quality_helpers(self):
        assert agreement_band("mis") is None
        assert agreement_band("matching", 0.1) == pytest.approx(7.0)
        assert agreement_band("one_plus_eps_matching", 0.1) == pytest.approx(1.5)
        report = solve("fractional_matching", path_graph(6), backend="central")
        assert quality_of(report) == pytest.approx(report.metrics["weight"])

    def test_families_are_deterministic(self):
        for name, build in FAMILIES.items():
            assert build(24, 3) == build(24, 3), name

    def test_attach_weights_deterministic(self):
        graph = gnp_random_graph(20, 0.2, seed=1)
        a = attach_weights(graph, 4)
        b = attach_weights(graph, 4)
        assert sorted(a.edges()) == sorted(b.edges())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestVerifyCLI:
    def test_exit_zero_and_jsonl(self, tmp_path, capsys):
        out = tmp_path / "verified.jsonl"
        code = verify_cli(
            [
                "--tasks",
                "mis",
                "--backends",
                "greedy,mpc",
                "--families",
                "gnp_sparse",
                "--sizes",
                "24",
                "--seeds",
                "0",
                "--jsonl",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "0 failures" in captured.out
        loaded = read_jsonl(out)
        assert loaded and all(report.verified for report in loaded)

    def test_exit_nonzero_on_failures(self, capsys):
        code = verify_cli(
            [
                "--tasks",
                "mis",
                "--backends",
                "mpc",
                "--families",
                "gnp_sparse",
                "--sizes",
                "24",
                "--seeds",
                "0",
                "--loglog-factor",
                "1e-6",
                "--rounds-offset",
                "0.0",
            ]
        )
        assert code == 1
        assert "rounds_budget" in capsys.readouterr().err

    def test_bad_family_exit_two(self, capsys):
        code = verify_cli(["--families", "moebius"])
        assert code == 2
        assert "unknown families" in capsys.readouterr().err