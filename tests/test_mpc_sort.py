"""Unit tests for the O(1)-round MPC sorting primitive ([GSZ11])."""

import pytest

from repro.mpc.cluster import MPCCluster
from repro.mpc.errors import MemoryExceededError
from repro.mpc.sort import SORT_ROUND_COST, mpc_prefix_sums, mpc_sort
from repro.utils.rng import make_rng


def _random_shards(num_machines, total, seed):
    rng = make_rng(seed)
    values = [rng.randrange(10**6) for _ in range(total)]
    shards = [[] for _ in range(num_machines)]
    for v in values:
        shards[rng.randrange(num_machines)].append(v)
    return shards, sorted(values)


class TestMPCSort:
    def test_sorts_globally(self):
        cluster = MPCCluster(8, words_per_machine=4000)
        shards, expected = _random_shards(8, 5000, seed=1)
        outcome = mpc_sort(cluster, shards, seed=1)
        assert outcome.flattened() == expected

    def test_shards_are_range_partitioned(self):
        cluster = MPCCluster(4, words_per_machine=4000)
        shards, _ = _random_shards(4, 2000, seed=2)
        outcome = mpc_sort(cluster, shards, seed=2)
        for left, right in zip(outcome.shards, outcome.shards[1:]):
            if left and right:
                assert left[-1] <= right[0]

    def test_constant_round_cost(self):
        cluster = MPCCluster(4, words_per_machine=4000)
        shards, _ = _random_shards(4, 2000, seed=3)
        outcome = mpc_sort(cluster, shards, seed=3)
        assert outcome.rounds_used == SORT_ROUND_COST
        assert cluster.rounds == SORT_ROUND_COST

    def test_balanced_buckets(self):
        cluster = MPCCluster(8, words_per_machine=4000)
        shards, _ = _random_shards(8, 8000, seed=4)
        outcome = mpc_sort(cluster, shards, seed=4)
        assert outcome.max_shard_size < 4 * (8000 // 8)

    def test_custom_key(self):
        cluster = MPCCluster(2, words_per_machine=1000)
        shards = [[(1, "b"), (3, "a")], [(2, "c")]]
        outcome = mpc_sort(cluster, shards, key=lambda kv: kv[0], seed=5)
        assert [kv[0] for kv in outcome.flattened()] == [1, 2, 3]

    def test_empty_input(self):
        cluster = MPCCluster(3, words_per_machine=100)
        outcome = mpc_sort(cluster, [[], [], []])
        assert outcome.flattened() == []
        assert outcome.rounds_used == SORT_ROUND_COST

    def test_too_many_shards_rejected(self):
        cluster = MPCCluster(2, words_per_machine=100)
        with pytest.raises(ValueError):
            mpc_sort(cluster, [[1], [2], [3]])

    def test_memory_violation_raises(self):
        """A skewed instance on an undersized cluster must fail loudly."""
        cluster = MPCCluster(2, words_per_machine=40)
        shards = [[5] * 60, [5] * 60]  # all-equal keys: one bucket gets all
        with pytest.raises(MemoryExceededError):
            mpc_sort(cluster, shards, seed=6)

    def test_determinism(self):
        shards, _ = _random_shards(4, 1000, seed=7)
        a = mpc_sort(MPCCluster(4, 4000), [list(s) for s in shards], seed=8)
        b = mpc_sort(MPCCluster(4, 4000), [list(s) for s in shards], seed=8)
        assert a.shards == b.shards


class TestPrefixSums:
    def test_prefix_sums(self):
        cluster = MPCCluster(3, words_per_machine=100)
        shards = [[1.0, 2.0], [3.0], [4.0, 5.0]]
        result, rounds = mpc_prefix_sums(cluster, shards)
        assert result == [[1.0, 3.0], [6.0], [10.0, 15.0]]
        assert rounds == 2

    def test_empty_shards(self):
        cluster = MPCCluster(2, words_per_machine=100)
        result, rounds = mpc_prefix_sums(cluster, [[], []])
        assert result == [[], []]
        assert rounds == 2
