"""Unit tests for the CONGESTED-CLIQUE matching adaptation."""

import pytest

from repro.congested_clique.matching import congested_clique_fractional_matching
from repro.core.config import MatchingConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import Graph
from repro.graph.properties import is_vertex_cover


class TestCCMatching:
    def test_decisions_match_mpc_under_same_seed(self):
        g = gnp_random_graph(200, 0.06, seed=1)
        cc = congested_clique_fractional_matching(g, seed=3)
        mpc = mpc_fractional_matching(g, seed=3)
        assert cc.matching.weights == mpc.matching.weights
        assert cc.vertex_cover == mpc.vertex_cover

    def test_cover_covers(self):
        g = gnp_random_graph(200, 0.06, seed=2)
        result = congested_clique_fractional_matching(g, seed=2)
        assert is_vertex_cover(g, result.vertex_cover)
        assert result.matching.is_valid()

    def test_rounds_accounted(self):
        g = gnp_random_graph(300, 0.05, seed=3)
        result = congested_clique_fractional_matching(g, seed=3)
        # At least: setup + per-phase (gather 2 + reply 1 + notify 1) + tail.
        minimum = 1 + result.phases * 4 + result.direct_iterations
        assert result.rounds >= minimum

    def test_rounds_stay_flat_across_sizes(self):
        rounds = []
        for n in (256, 1024):
            g = gnp_random_graph(n, 16.0 / n, seed=4)
            rounds.append(congested_clique_fractional_matching(g, seed=4).rounds)
        assert rounds[1] - rounds[0] <= 15

    def test_empty(self):
        result = congested_clique_fractional_matching(Graph(0))
        assert result.rounds == 0
        assert result.weight == 0.0

    def test_quality_inherited(self):
        from repro.baselines.blossom import maximum_matching

        eps = 0.1
        g = gnp_random_graph(192, 0.08, seed=5)
        result = congested_clique_fractional_matching(
            g, config=MatchingConfig(epsilon=eps), seed=5
        )
        optimum = len(maximum_matching(g))
        assert result.weight >= optimum / (2 + 50 * eps) - 1e-9
