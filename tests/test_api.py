"""The façade: registry dispatch, cross-backend validity, reports, batch.

The heart is the cross-backend consistency suite: every registered
``(task, backend)`` pair must return a *valid* solution (ground-truth
validators, not solver self-reports) on a shared grid of small graphs and
seeds — the contract that makes backends interchangeable.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import (
    BACKENDS,
    TASKS,
    RunReport,
    SolverRegistry,
    UnknownSolverError,
    read_jsonl,
    registry,
    solve,
    solve_many,
    sweep,
)
from repro.api.batch import RunSpec
from repro.api.registry import SolverOutput
from repro.api.__main__ import main as cli_main, parse_graph_spec
from repro.core.config import MatchingConfig, MISConfig
from repro.graph.generators import (
    cycle_graph,
    gnp_random_graph,
    path_graph,
    random_weighted_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_valid_fractional_matching,
    is_vertex_cover,
)
from repro.graph.weighted import WeightedGraph
from repro.mpc.spec import ClusterSpec


def shared_grid():
    """The small-graph grid every backend must handle."""
    return [
        ("path9", path_graph(9)),
        ("cycle8", cycle_graph(8)),
        ("star7", star_graph(7)),
        ("gnp60", gnp_random_graph(60, 0.08, seed=5)),
    ]


GRID = shared_grid()
PAIRS = registry.pairs()
SEEDS = (1, 9)

_PARENT_PID = os.getpid()
from repro.api.batch import _run_indexed as _real_run_indexed  # noqa: E402


def _exit_in_child(job):
    """Pool sabotage: hard-kill the worker handling spec #1.

    Module-level so the pool can pickle it by reference; the PID guard
    keeps the parent's serial salvage pass (which runs the same specs)
    alive.  ``os._exit`` models an OOM kill — no exception, no cleanup,
    just a dead process and a broken pool.
    """
    if job[0] == 1 and os.getpid() != _PARENT_PID:
        os._exit(1)
    return _real_run_indexed(job)


class TestRegistry:
    def test_every_task_has_at_least_two_backends(self):
        for task in TASKS:
            assert len(registry.backends(task)) >= 2, task

    def test_all_tasks_registered(self):
        assert registry.tasks() == list(TASKS)

    def test_auto_prefers_the_paper_mpc_algorithm(self):
        for task in TASKS:
            assert registry.resolve(task).backend == "mpc"

    def test_unknown_pair_raises_with_alternatives(self):
        with pytest.raises(UnknownSolverError, match="available backends"):
            registry.get("weighted_matching", "pregel")

    def test_unknown_task_raises(self):
        with pytest.raises(UnknownSolverError):
            registry.resolve("coloring")

    def test_duplicate_registration_rejected(self):
        fresh = SolverRegistry()

        @fresh.register("mis", "greedy", solution_kind="vertex_set")
        def first(graph, **kwargs):
            return SolverOutput(solution=set())

        with pytest.raises(ValueError, match="already registered"):

            @fresh.register("mis", "greedy", solution_kind="vertex_set")
            def second(graph, **kwargs):
                return SolverOutput(solution=set())

    def test_register_validates_names(self):
        fresh = SolverRegistry()
        with pytest.raises(ValueError, match="unknown task"):
            fresh.register("coloring", "mpc", solution_kind="vertex_set")
        with pytest.raises(ValueError, match="unknown backend"):
            fresh.register("mis", "quantum", solution_kind="vertex_set")


class TestCrossBackendConsistency:
    @pytest.mark.parametrize(
        "task,backend", PAIRS, ids=[f"{t}-{b}" for t, b in PAIRS]
    )
    @pytest.mark.parametrize("name,graph", GRID, ids=[name for name, _ in GRID])
    def test_every_pair_valid_on_grid(self, task, backend, name, graph):
        report = solve(task, graph, backend=backend, seed=1)
        assert report.task == task and report.backend == backend
        assert report.valid, f"{task}/{backend} invalid on {name}"
        _check_ground_truth(task, graph, report)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "task,backend", PAIRS, ids=[f"{t}-{b}" for t, b in PAIRS]
    )
    def test_every_pair_valid_across_seeds(self, task, backend, seed):
        graph = gnp_random_graph(40, 0.1, seed=17)
        report = solve(task, graph, backend=backend, seed=seed)
        assert report.valid
        assert report.seed == seed

    def test_same_seed_same_solution(self):
        graph = gnp_random_graph(50, 0.1, seed=3)
        for task, backend in PAIRS:
            first = solve(task, graph, backend=backend, seed=23)
            again = solve(task, graph, backend=backend, seed=23)
            assert first.solution == again.solution, (task, backend)


def _check_ground_truth(task: str, graph, report: RunReport) -> None:
    """Re-validate with the property predicates, independent of metrics."""
    structure = graph.structure if isinstance(graph, WeightedGraph) else graph
    if task == "mis":
        assert is_maximal_independent_set(structure, report.vertex_set())
    elif task == "vertex_cover":
        assert is_vertex_cover(structure, report.vertex_set())
    elif task == "fractional_matching":
        assert is_valid_fractional_matching(structure, report.edge_weights())
    else:
        assert is_matching(structure, report.edge_set())


class TestSolveFacade:
    def test_auto_backend(self):
        report = solve("mis", cycle_graph(10), seed=2)
        assert report.backend == "mpc"

    def test_config_dict_is_constructed(self):
        report = solve(
            "matching", cycle_graph(12), config={"epsilon": 0.2}, seed=1
        )
        assert report.config["epsilon"] == 0.2
        assert report.config["__type__"] == "MatchingConfig"

    def test_config_dataclass_passthrough(self):
        report = solve("mis", path_graph(8), config=MISConfig(alpha=0.5), seed=1)
        assert report.config["alpha"] == 0.5

    def test_budget_overrides_memory_factor(self):
        report = solve("mis", gnp_random_graph(40, 0.2, seed=1), budget=4.0)
        assert report.config["memory_factor"] == 4.0

    def test_budget_ignored_by_configless_backend(self):
        # Sweep-wide budgets must not break backends="all": backends with
        # no memory model simply ignore the hint.
        report = solve("mis", path_graph(6), backend="greedy", budget=2.0)
        assert report.valid and report.config == {}

    def test_dict_config_ignored_by_configless_backend(self):
        report = solve(
            "matching", path_graph(6), backend="central", config={"epsilon": 0.2}
        )
        assert report.valid and report.config == {}

    def test_dataclass_config_rejected_by_configless_backend(self):
        with pytest.raises(TypeError, match="takes no config"):
            solve(
                "matching",
                path_graph(6),
                backend="central",
                config=MatchingConfig(),
            )

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            solve("mis", path_graph(6), budget=-1.0)
        with pytest.raises(ValueError, match="positive"):
            solve("mis", path_graph(6), backend="greedy", budget=-1.0)

    def test_non_int_seed_rejected(self):
        import random

        with pytest.raises(TypeError, match="int seed"):
            solve("mis", path_graph(6), seed=random.Random(1))

    def test_weighted_task_wraps_plain_graph(self):
        report = solve("weighted_matching", cycle_graph(8), seed=1)
        assert report.valid
        assert report.metrics["weight"] == pytest.approx(float(report.size))

    def test_unweighted_task_accepts_weighted_graph(self):
        weighted = random_weighted_graph(30, 0.15, seed=4)
        report = solve("matching", weighted, backend="greedy", seed=4)
        assert report.valid
        assert report.n == weighted.num_vertices

    def test_metrics_carry_weight_for_fractional(self):
        report = solve("fractional_matching", cycle_graph(10), seed=1)
        assert report.metrics["weight"] > 0

    def test_extras_preserve_backend_measurements(self):
        report = solve("mis", gnp_random_graph(80, 0.3, seed=2), seed=2)
        assert "prefix_phases" in report.extras
        cc = solve(
            "mis", gnp_random_graph(80, 0.3, seed=2), backend="congested_clique"
        )
        assert "max_routed_messages" in cc.extras

    def test_empty_graph(self):
        report = solve("mis", Graph(5), seed=1)
        assert report.valid
        assert report.vertex_set() == {0, 1, 2, 3, 4}


class TestRunReport:
    def test_json_roundtrip_every_kind(self):
        graph = gnp_random_graph(30, 0.15, seed=6)
        for task, backend in (
            ("mis", "mpc"),
            ("matching", "greedy"),
            ("fractional_matching", "central"),
            ("weighted_matching", "mpc"),
        ):
            report = solve(task, graph, backend=backend, seed=11)
            assert RunReport.from_json(report.to_json()) == report

    def test_solution_is_canonical_json(self):
        report = solve("matching", cycle_graph(10), backend="greedy", seed=1)
        payload = json.loads(report.to_json())
        assert payload["solution"] == sorted(payload["solution"])
        for u, v in payload["solution"]:
            assert u < v

    def test_solution_kind_accessors_guard(self):
        report = solve("mis", path_graph(6), seed=1)
        with pytest.raises(TypeError):
            report.edge_set()
        with pytest.raises(TypeError):
            report.edge_weights()

    def test_invalid_solution_kind_rejected(self):
        with pytest.raises(ValueError, match="solution_kind"):
            RunReport(
                task="mis",
                backend="mpc",
                n=1,
                num_edges=0,
                solution_kind="matrix",
                solution=[],
            )

    def test_summary_row_fields(self):
        row = solve("vertex_cover", cycle_graph(8), seed=1).summary_row()
        assert {"task", "backend", "n", "m", "size", "rounds", "valid"} <= set(row)


class TestSolveMany:
    def test_sweep_cross_product_and_jsonl(self, tmp_path):
        graphs = [cycle_graph(8), gnp_random_graph(30, 0.12, seed=8)]
        specs = sweep(
            ["mis", "matching"],
            graphs,
            backends=["mpc", "greedy"],
            seeds=(1, 2),
            configs=(None,),
        )
        assert len(specs) == 16  # 2 graphs x 2 tasks x 2 backends x 2 seeds
        out = tmp_path / "reports.jsonl"
        result = solve_many(specs, jsonl_path=out)
        assert len(result) == 16 and not result.failures
        loaded = read_jsonl(out)
        assert loaded == result.reports
        assert all(report.valid for report in loaded)

    def test_sweep_all_backends(self):
        specs = sweep(["vertex_cover"], [path_graph(7)], backends="all")
        assert {spec.backend for spec in specs} == set(
            registry.backends("vertex_cover")
        )

    def test_failures_recorded_not_raised(self):
        specs = [
            RunSpec(task="mis", graph=path_graph(5), backend="mpc", seed=1),
            RunSpec(task="weighted_matching", graph=path_graph(5), backend="pregel"),
        ]
        result = solve_many(specs)
        assert len(result.reports) == 1
        assert len(result.failures) == 1
        assert "UnknownSolverError" in result.failures[0]["error"]

    def test_raise_on_error(self):
        specs = [RunSpec(task="mis", graph=path_graph(5), backend="central")]
        with pytest.raises(UnknownSolverError):
            solve_many(specs, raise_on_error=True)

    def test_jsonl_truncates_by_default_appends_on_request(self, tmp_path):
        out = tmp_path / "runs.jsonl"
        specs = sweep(["mis"], [path_graph(6)], backends="greedy", seeds=(1, 2))
        solve_many(specs, jsonl_path=out)
        solve_many(specs, jsonl_path=out)
        assert len(read_jsonl(out)) == 2  # second run replaced the first
        # append resumes idempotently: already-settled specs are skipped,
        # not duplicated (see tests/test_batch_resume.py for the full
        # contract), while genuinely new specs still land.
        solve_many(specs, jsonl_path=out, append=True)
        assert len(read_jsonl(out)) == 2
        more = sweep(["mis"], [path_graph(6)], backends="greedy", seeds=(3,))
        solve_many(more, jsonl_path=out, append=True)
        assert len(read_jsonl(out)) == 3

    def test_spec_label_lands_in_extras(self):
        specs = sweep(["mis"], [path_graph(6), cycle_graph(6)], backends="greedy")
        result = solve_many(specs)
        assert [r.extras["spec_label"] for r in result.reports] == ["g0", "g1"]

    def test_multiprocessing_pool_matches_serial(self):
        specs = sweep(
            ["mis", "vertex_cover"],
            [gnp_random_graph(40, 0.1, seed=2)],
            backends="greedy",
            seeds=(1, 2, 3),
        )
        serial = solve_many(specs)
        pooled = solve_many(specs, processes=2)
        assert [r.solution for r in serial.reports] == [
            r.solution for r in pooled.reports
        ]


class TestSolveManyFailurePaths:
    def test_empty_spec_list(self, tmp_path):
        out = tmp_path / "empty.jsonl"
        result = solve_many([], jsonl_path=out)
        assert len(result) == 0
        assert result.reports == [] and result.failures == []
        assert result.elapsed_s >= 0.0
        assert out.read_text() == ""  # file created, zero rows

    def test_worker_exception_recorded_on_pool_path(self):
        # An unregistered (task, backend) pair raises inside the worker;
        # the pool path must record it and keep the good specs.
        specs = [
            RunSpec(task="mis", graph=path_graph(6), backend="greedy", seed=1),
            RunSpec(task="mis", graph=path_graph(6), backend="central", seed=1),
            RunSpec(task="matching", graph=path_graph(6), backend="greedy", seed=1),
        ]
        result = solve_many(specs, processes=2)
        assert len(result.reports) == 2
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure["backend"] == "central"
        assert "UnknownSolverError" in failure["error"]

    def test_malformed_spec_config_recorded(self):
        # A typed config routed to a backend that takes none is the
        # facade's TypeError; solve_many must absorb it per-spec.
        specs = [
            RunSpec(
                task="mis",
                graph=path_graph(6),
                backend="greedy",
                config=MISConfig(),
            ),
            RunSpec(task="mis", graph=path_graph(6), backend="greedy"),
        ]
        result = solve_many(specs)
        assert len(result.reports) == 1
        assert len(result.failures) == 1
        assert "TypeError" in result.failures[0]["error"]

    def test_malformed_spec_raises_when_requested(self):
        specs = [
            RunSpec(
                task="mis",
                graph=path_graph(6),
                backend="greedy",
                config=MISConfig(),
            )
        ]
        with pytest.raises(RuntimeError, match="spec failed"):
            solve_many(specs, raise_on_error=True, processes=2)

    def test_pool_failure_keeps_jsonl_of_successes(self, tmp_path):
        out = tmp_path / "partial.jsonl"
        specs = [
            RunSpec(task="mis", graph=path_graph(6), backend="central", seed=1),
            RunSpec(task="mis", graph=path_graph(6), backend="greedy", seed=1),
        ]
        result = solve_many(specs, processes=2, jsonl_path=out)
        assert len(result.failures) == 1
        assert len(read_jsonl(out)) == 1

    def test_broken_pool_salvages_sweep_serially(self, monkeypatch):
        # A worker process dying outright (OOM-kill class, not a Python
        # exception) breaks the pool.  The sweep must still deliver every
        # report — the unfinished specs re-run serially — and record the
        # incident instead of raising.
        import repro.api.batch as batch_module

        monkeypatch.setattr(batch_module, "_run_indexed", _exit_in_child)
        specs = sweep(
            ["mis"],
            [path_graph(6)],
            backends="greedy",
            seeds=(1, 2, 3, 4),
        )
        result = solve_many(specs, processes=2)
        assert len(result.reports) == 4
        assert not result.failures
        assert result.incidents
        assert "re-run serially" in result.incidents[0]
        serial = solve_many(specs)
        assert [r.solution for r in result.reports] == [
            r.solution for r in serial.reports
        ]


class TestRunReportSchema:
    def test_current_schema_round_trips(self):
        report = solve("mis", path_graph(5), backend="greedy", seed=1)
        payload = json.loads(report.to_json())
        assert payload["schema"] == 2
        assert RunReport.from_json(report.to_json()) == report

    def test_version1_payload_upgraded(self):
        report = solve("mis", path_graph(5), backend="greedy", seed=1)
        payload = report.to_dict()
        # A PR1/PR2-era row: no schema and none of the v2 fields.
        for key in ("schema", "total_comm_words", "verification"):
            payload.pop(key)
        loaded = RunReport.from_dict(payload)
        assert loaded.schema == 2
        assert loaded.total_comm_words == 0
        assert loaded.verification == {}
        assert loaded.solution == report.solution

    @pytest.mark.parametrize("bad", [0, 3, 99, "2.0", None])
    def test_unknown_schema_rejected(self, bad):
        report = solve("mis", path_graph(5), backend="greedy", seed=1)
        payload = report.to_dict()
        payload["schema"] = bad
        with pytest.raises(ValueError, match="schema version"):
            RunReport.from_dict(payload)
        with pytest.raises(ValueError, match="schema version"):
            RunReport.from_json(json.dumps(payload))

    def test_constructor_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema version"):
            RunReport(
                task="mis",
                backend="greedy",
                n=1,
                num_edges=0,
                solution_kind="vertex_set",
                solution=[0],
                schema=7,
            )


class TestClusterSpec:
    def test_fit_matches_mis_sizing(self):
        graph = gnp_random_graph(100, 0.1, seed=1)
        spec = ClusterSpec.from_graph(graph, 8.0, machines="fit")
        words = max(int(8.0 * 100), 64)
        total = 2 * graph.num_edges + 100
        assert spec.words_per_machine == words
        assert spec.num_machines == max(2, -(-total // words) + 1)

    def test_sqrt_machines(self):
        spec = ClusterSpec.from_graph(Graph(100), machines="sqrt")
        assert spec.num_machines == 11

    def test_minimum_words_floor(self):
        spec = ClusterSpec.from_graph(Graph(3), 1.0)
        assert spec.words_per_machine == 64

    def test_build_cluster(self):
        cluster = ClusterSpec.from_graph(Graph(50)).build_cluster()
        assert cluster.words_per_machine == 400

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec.from_graph(Graph(10), memory_factor=0.0)
        with pytest.raises(ValueError):
            ClusterSpec.from_graph(Graph(10), machines="cubic")
        with pytest.raises(ValueError):
            ClusterSpec(num_machines=0, words_per_machine=10)

    def test_to_dict(self):
        spec = ClusterSpec.from_graph(Graph(10), 2.0)
        assert spec.to_dict()["memory_factor"] == 2.0


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        assert "congested_clique" in capsys.readouterr().out

    def test_solve(self, capsys):
        rc = cli_main(
            ["solve", "--task", "mis", "--graph", "gnp:n=50,p=0.1", "--seed", "3"]
        )
        assert rc == 0
        assert "mis" in capsys.readouterr().out

    def test_solve_json_output(self, capsys):
        rc = cli_main(
            [
                "solve",
                "--task",
                "matching",
                "--backend",
                "greedy",
                "--graph",
                "cycle:n=10",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["task"] == "matching"

    def test_sweep_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "cli.jsonl"
        rc = cli_main(
            [
                "sweep",
                "--tasks",
                "mis,vertex_cover",
                "--backends",
                "mpc,greedy",
                "--graphs",
                "path:n=8",
                "cycle:n=8",
                "--seeds",
                "1,2,3",
                "--jsonl",
                str(out),
            ]
        )
        assert rc == 0
        reports = read_jsonl(out)
        assert len(reports) == 24  # 2 graphs x 2 tasks x 2 backends x 3 seeds
        assert all(report.valid for report in reports)

    def test_bad_graph_spec_is_an_error(self, capsys):
        rc = cli_main(
            ["solve", "--task", "mis", "--graph", "torus:n=10"]
        )
        assert rc == 2
        assert "unknown graph kind" in capsys.readouterr().err

    def test_parse_graph_spec_kinds(self):
        assert parse_graph_spec("grid:rows=3,cols=4").num_vertices == 12
        assert parse_graph_spec("complete:n=5").num_edges == 10
        with pytest.raises(ValueError):
            parse_graph_spec("gnp:n==5")


class TestPeakRssNormalization:
    """ru_maxrss units differ per platform; the report field is bytes."""

    def test_darwin_reports_bytes(self):
        from repro.api.facade import _ru_maxrss_unit

        assert _ru_maxrss_unit("darwin") == 1

    def test_linux_and_bsds_report_kib(self):
        from repro.api.facade import _ru_maxrss_unit

        for platform in ("linux", "freebsd13", "openbsd7", "netbsd"):
            assert _ru_maxrss_unit(platform) == 1024

    def test_current_platform_measurement_is_plausible_bytes(self):
        from repro.api.facade import _peak_rss_bytes

        peak = _peak_rss_bytes()
        # A running CPython interpreter occupies at least a few MiB; a
        # KiB-valued reading slipping through unconverted would fail this.
        assert peak > 4 * 2**20
        assert peak < 2**40

    def test_report_carries_normalized_bytes(self):
        report = solve("mis", path_graph(8), backend="greedy")
        assert report.peak_rss_bytes > 4 * 2**20

    def test_children_high_water_mark_is_included(self, monkeypatch):
        # Worker processes (repro.dist executors, solve_many pools) only
        # show up in the RUSAGE_CHILDREN high-water mark; the report must
        # sum both readings before normalizing to bytes.
        import resource as resource_module

        from repro.api import facade

        class FakeUsage:
            def __init__(self, ru_maxrss):
                self.ru_maxrss = ru_maxrss

        readings = {
            resource_module.RUSAGE_SELF: FakeUsage(300_000),
            resource_module.RUSAGE_CHILDREN: FakeUsage(120_000),
        }
        monkeypatch.setattr(
            facade.resource, "getrusage", lambda who: readings[who]
        )
        expected = (300_000 + 120_000) * facade._ru_maxrss_unit()
        assert facade._peak_rss_bytes() == expected

    def test_children_reading_reflects_reaped_workers(self):
        # End to end: after a parallel solve the owned executor is closed
        # (workers reaped) before the reading, so the reported peak covers
        # the whole process tree and never shrinks below the self peak.
        report = solve(
            "fractional_matching",
            gnp_random_graph(80, 0.1, seed=7),
            backend="mpc",
            seed=5,
            executor="parallel",
            workers=2,
        )
        from repro.api.facade import _peak_rss_bytes

        assert report.peak_rss_bytes > 4 * 2**20
        assert _peak_rss_bytes() >= report.peak_rss_bytes
