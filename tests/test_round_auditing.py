"""Round-accounting audit tests.

Every round an algorithm reports must be traceable: the sum of charges
recorded on the trace equals the result's round count, and every charge
carries a human-readable reason.  This is the property that makes the
experiment tables trustworthy.
"""

import pytest

from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.graph.generators import gnp_random_graph
from repro.utils.trace import Trace


class TestMISRoundAudit:
    def test_charges_sum_to_rounds(self):
        g = gnp_random_graph(400, 0.3, seed=1)
        trace = Trace()
        result = mis_mpc(g, seed=1, trace=trace)
        charged = sum(trace.values("rounds_charged", "count"))
        assert charged == result.rounds

    def test_every_charge_has_reason(self):
        g = gnp_random_graph(200, 0.2, seed=2)
        trace = Trace()
        mis_mpc(g, seed=2, trace=trace)
        reasons = trace.values("rounds_charged", "reason")
        assert reasons
        assert all(isinstance(reason, str) and reason for reason in reasons)

    def test_phases_recorded(self):
        g = gnp_random_graph(512, 0.5, seed=3)
        trace = Trace()
        result = mis_mpc(g, seed=3, trace=trace)
        assert trace.count("mis_prefix_phase") == result.prefix_phases
        assert trace.count("sparsified_mis") == 1


class TestMatchingRoundAudit:
    def test_charges_sum_to_rounds(self):
        g = gnp_random_graph(300, 0.06, seed=4)
        trace = Trace()
        result = mpc_fractional_matching(g, seed=4, trace=trace)
        charged = sum(trace.values("rounds_charged", "count"))
        assert charged == result.rounds

    def test_phase_events_match_result(self):
        g = gnp_random_graph(300, 0.06, seed=5)
        trace = Trace()
        result = mpc_fractional_matching(g, seed=5, trace=trace)
        assert trace.count("matching_phase") == result.phases

    def test_direct_iterations_charged_individually(self):
        g = gnp_random_graph(300, 0.06, seed=6)
        trace = Trace()
        result = mpc_fractional_matching(g, seed=6, trace=trace)
        direct_charges = [
            event
            for event in trace.events("rounds_charged")
            if event["reason"] == "matching: direct Central-Rand iteration"
        ]
        assert len(direct_charges) == result.direct_iterations
