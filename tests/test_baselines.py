"""Unit tests for baseline algorithms: Luby, greedy, Israeli-Itai,
filtering, Hopcroft-Karp, Blossom, and the brute-force solvers."""

import math

import pytest

from repro.baselines.blossom import maximum_matching, maximum_matching_size
from repro.baselines.exact import (
    brute_force_maximum_matching,
    brute_force_maximum_weight_matching,
    brute_force_minimum_vertex_cover,
    exact_maximum_independent_set,
)
from repro.baselines.filtering import filtering_maximal_matching
from repro.baselines.greedy import greedy_maximal_matching, greedy_mis_sequential
from repro.baselines.hopcroft_karp import bipartition, hopcroft_karp_matching
from repro.baselines.israeli_itai import israeli_itai_matching
from repro.baselines.luby import luby_mis
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    random_bipartite_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_vertex_cover,
)
from repro.graph.weighted import WeightedGraph


class TestLuby:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_maximal_independent(self, seed):
        g = gnp_random_graph(150, 0.08, seed=seed)
        result = luby_mis(g, seed=seed)
        assert is_maximal_independent_set(g, result.mis)

    def test_rounds_logarithmic(self):
        g = gnp_random_graph(500, 0.05, seed=3)
        result = luby_mis(g, seed=3)
        assert result.rounds <= 6 * math.log2(500)

    def test_edgeless(self):
        result = luby_mis(Graph(5), seed=1)
        assert result.mis == set(range(5))
        assert result.rounds == 1


class TestGreedyBaselines:
    def test_greedy_mis(self):
        g = gnp_random_graph(100, 0.1, seed=4)
        assert is_maximal_independent_set(g, greedy_mis_sequential(g, seed=4))

    def test_greedy_matching_maximal(self):
        g = gnp_random_graph(100, 0.1, seed=5)
        assert is_maximal_matching(g, greedy_maximal_matching(g, seed=5))

    def test_greedy_matching_with_fixed_order(self):
        g = path_graph(4)
        assert greedy_maximal_matching(g, order=[(0, 1), (1, 2), (2, 3)]) == {
            (0, 1),
            (2, 3),
        }


class TestIsraeliItai:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_maximal_matching(self, seed):
        g = gnp_random_graph(120, 0.08, seed=seed)
        result = israeli_itai_matching(g, seed=seed)
        assert is_maximal_matching(g, result.matching)

    def test_rounds_logarithmic(self):
        g = gnp_random_graph(400, 0.05, seed=2)
        result = israeli_itai_matching(g, seed=2)
        assert result.rounds <= 8 * math.log2(400)

    def test_star(self):
        result = israeli_itai_matching(star_graph(20), seed=3)
        assert len(result.matching) == 1


class TestFiltering:
    def test_maximal_matching(self):
        g = gnp_random_graph(150, 0.1, seed=6)
        result = filtering_maximal_matching(g, words_per_machine=4 * 150, seed=6)
        assert is_maximal_matching(g, result.matching)

    def test_residuals_shrink(self):
        g = gnp_random_graph(300, 0.15, seed=7)
        result = filtering_maximal_matching(g, words_per_machine=2 * 300, seed=7)
        trajectory = result.residual_edges_per_round
        assert trajectory[-1] == 0
        assert all(
            later <= earlier
            for earlier, later in zip(trajectory, trajectory[1:])
        )

    def test_tiny_memory_rejected(self):
        with pytest.raises(ValueError):
            filtering_maximal_matching(path_graph(3), words_per_machine=4)

    def test_fits_in_one_round_when_memory_large(self):
        g = gnp_random_graph(50, 0.1, seed=8)
        result = filtering_maximal_matching(g, words_per_machine=10**6, seed=8)
        assert result.rounds == 1


class TestHopcroftKarp:
    def test_bipartition_detects(self):
        assert bipartition(path_graph(5)) is not None
        assert bipartition(cycle_graph(5)) is None

    def test_exact_on_even_cycle(self):
        assert len(hopcroft_karp_matching(cycle_graph(8))) == 4

    def test_exact_on_path(self):
        assert len(hopcroft_karp_matching(path_graph(7))) == 3

    def test_random_bipartite_agrees_with_blossom(self):
        g = random_bipartite_graph(40, 40, 0.08, seed=9)
        assert len(hopcroft_karp_matching(g)) == maximum_matching_size(g)

    def test_rejects_odd_cycle(self):
        with pytest.raises(ValueError):
            hopcroft_karp_matching(cycle_graph(5))

    def test_output_is_matching(self):
        g = random_bipartite_graph(30, 50, 0.1, seed=10)
        assert is_matching(g, hopcroft_karp_matching(g))


class TestBlossom:
    def test_odd_cycle(self):
        assert maximum_matching_size(cycle_graph(5)) == 2
        assert maximum_matching_size(cycle_graph(7)) == 3

    def test_complete_graphs(self):
        assert maximum_matching_size(complete_graph(6)) == 3
        assert maximum_matching_size(complete_graph(7)) == 3

    def test_petersen_has_perfect_matching(self, petersen):
        assert maximum_matching_size(petersen) == 5

    def test_agrees_with_brute_force(self):
        for seed in range(6):
            g = gnp_random_graph(12, 0.3, seed=seed)
            assert maximum_matching_size(g) == len(
                brute_force_maximum_matching(g)
            )

    def test_output_is_matching(self):
        g = gnp_random_graph(60, 0.1, seed=11)
        assert is_matching(g, maximum_matching(g))

    def test_blossom_within_blossom(self):
        """Two fused triangles plus a tail force nested contractions."""
        g = Graph(
            8,
            [
                (0, 1), (1, 2), (0, 2),  # triangle
                (2, 3), (3, 4), (4, 2),  # second triangle sharing vertex 2
                (4, 5), (5, 6), (6, 7),
            ],
        )
        assert maximum_matching_size(g) == len(brute_force_maximum_matching(g))


class TestExact:
    def test_mis_on_structures(self):
        assert len(exact_maximum_independent_set(star_graph(6))) == 6
        assert len(exact_maximum_independent_set(cycle_graph(5))) == 2
        assert len(exact_maximum_independent_set(complete_graph(5))) == 1

    def test_vc_complements_mis(self):
        g = gnp_random_graph(14, 0.3, seed=12)
        vc = brute_force_minimum_vertex_cover(g)
        assert is_vertex_cover(g, vc)
        assert len(vc) == 14 - len(exact_maximum_independent_set(g))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            exact_maximum_independent_set(Graph(60))

    def test_weighted_brute_force(self):
        wg = WeightedGraph(4, [(0, 1, 5.0), (1, 2, 7.0), (2, 3, 5.0)])
        edges, weight = brute_force_maximum_weight_matching(wg)
        assert weight == pytest.approx(10.0)
        assert edges == {(0, 1), (2, 3)}
