"""Unit tests for repro.govern: policy, estimator, governor, and the
façade/solver integration of the load-governance ladder."""

from __future__ import annotations

import json

import pytest

from repro.api import solve, sweep
from repro.govern import (
    GovernanceDegraded,
    GovernancePolicy,
    Governor,
    PeakHoldEstimator,
    governed_broadcast,
)
from repro.govern.events import CHUNK, DEGRADE, SPARSIFY, WATERMARK
from repro.govern.governor import _MAX_EVENTS
from repro.graph.generators import barabasi_albert, gnp_random_graph
from repro.graph.statistics import load_summary
from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.errors import MemoryExceededError

BUDGET = 0.5  # memory_factor that breaches on the adversarial cells below


def dense_graph(n=96, seed=0):
    return gnp_random_graph(n, 0.5, seed=seed)


def powerlaw_graph(n=96, seed=0):
    return barabasi_albert(n, 8, seed=seed)


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------


class TestGovernancePolicy:
    def test_defaults(self):
        policy = GovernancePolicy()
        assert policy.watermark == 0.9
        assert policy.allow_sparsify and policy.allow_chunk
        assert policy.allow_degrade

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"watermark": 0.0},
            {"watermark": 1.5},
            {"headroom": 0.5},
            {"max_chunks": 0},
            {"max_sparsify": 0.5},
            {"decay": 0.0},
            {"prime_cap": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GovernancePolicy(**kwargs)

    def test_from_any(self):
        assert GovernancePolicy.from_any(None) is None
        assert GovernancePolicy.from_any(False) is None
        assert GovernancePolicy.from_any(True) == GovernancePolicy()
        custom = GovernancePolicy.from_any({"watermark": 0.8})
        assert custom.watermark == 0.8
        assert GovernancePolicy.from_any(custom) is custom
        with pytest.raises(TypeError):
            GovernancePolicy.from_any("yes")

    def test_to_dict_json_ready(self):
        payload = GovernancePolicy().to_dict()
        assert json.loads(json.dumps(payload)) == payload


# ---------------------------------------------------------------------------
# estimator
# ---------------------------------------------------------------------------


class TestPeakHoldEstimator:
    def test_prime_uses_sqrt_of_skew_capped(self):
        est = PeakHoldEstimator(GovernancePolicy(prime_cap=2.0))
        est.prime(load_summary(powerlaw_graph()))
        assert 1.0 <= est.ratio <= 2.0

        uncapped = PeakHoldEstimator(GovernancePolicy(prime_cap=100.0))
        uncapped.prime(load_summary(powerlaw_graph()))
        summary = load_summary(powerlaw_graph())
        assert uncapped.ratio == pytest.approx(summary.skew_ratio**0.5)

    def test_observe_peak_hold_and_decay(self):
        est = PeakHoldEstimator(GovernancePolicy(decay=0.5))
        est.observe([10, 10, 40])  # ratio 2.0
        assert est.ratio == pytest.approx(2.0)
        est.observe([10, 10, 10])  # calm phase: decay toward 1.0
        assert est.ratio == pytest.approx(1.0)
        est.observe([5, 5, 30])  # new worst case adopted immediately
        assert est.ratio == pytest.approx(30 / (40 / 3))

    def test_observe_ignores_zeros_and_counts(self):
        est = PeakHoldEstimator()
        assert est.observe([0, 0]) == 1.0
        assert est.observations == 1

    def test_predict_part_words(self):
        est = PeakHoldEstimator(GovernancePolicy(headroom=1.0))
        # total=1000, 10 parts, 5 receivers: 1000/100 * ceil(10/5) = 20
        assert est.predict_part_words(1000, 10, 5) == 20
        with pytest.raises(ValueError):
            est.predict_part_words(100, 0)

    def test_to_dict(self):
        payload = PeakHoldEstimator().to_dict()
        assert set(payload) == {"ratio", "observations"}


# ---------------------------------------------------------------------------
# governor
# ---------------------------------------------------------------------------


class _FakeCluster:
    """Records broadcast calls; never enforces a budget."""

    words_per_machine = 100
    num_machines = 4

    def __init__(self):
        self.broadcasts = []

    def broadcast(self, words, context=""):
        self.broadcasts.append((words, context))


class TestGovernor:
    def test_unbound_raises(self):
        with pytest.raises(RuntimeError, match="bind"):
            Governor().soft_words

    def test_bind_words(self):
        gov = Governor(GovernancePolicy(watermark=0.9))
        gov.bind_words(100, receivers=3)
        assert gov.bound
        assert gov.soft_words == 90

    def test_plan_partitions_pass_through(self):
        gov = Governor()
        gov.bind_words(1000)
        assert gov.plan_partitions(4, 100, "ctx") == 4
        assert gov.events == []

    def test_plan_partitions_doubles_until_fit(self):
        gov = Governor(GovernancePolicy(headroom=1.0))
        # Plenty of receivers so no round-robin folding obscures the math:
        # predicted = total/parts².  4: 625 > 90; 8: 156 > 90; 16: 39 ok.
        gov.bind_words(100, receivers=1000)  # soft = 90
        parts = gov.plan_partitions(4, 10_000, "ctx")
        assert parts == 16
        assert [e.kind for e in gov.events] == [SPARSIFY]
        assert gov.triggered

    def test_plan_partitions_respects_ceiling(self):
        gov = Governor(GovernancePolicy(max_sparsify=2.0, headroom=1.0))
        gov.bind_words(10)
        assert gov.plan_partitions(4, 10_000, "ctx") == 8  # capped at 2x

    def test_plan_partitions_disabled(self):
        gov = Governor(GovernancePolicy(allow_sparsify=False))
        gov.bind_words(10)
        assert gov.plan_partitions(4, 10_000, "ctx") == 4
        assert gov.events == []

    def test_grow_partitions_doubles_and_caps(self):
        gov = Governor(GovernancePolicy(max_sparsify=4.0))
        gov.bind_words(100)
        assert gov.grow_partitions(4, 4, 95, "ctx") == 8
        assert gov.grow_partitions(4, 8, 95, "ctx") == 16
        assert gov.grow_partitions(4, 16, 95, "ctx") == 16  # at ceiling
        assert sum(1 for e in gov.events if e.kind == SPARSIFY) == 2

    def test_plan_chunks(self):
        gov = Governor()
        gov.bind_words(100)  # soft 90
        assert gov.plan_chunks(90, "ctx") is None
        sizes = gov.plan_chunks(200, "ctx")
        assert sum(sizes) == 200
        assert all(size <= 90 for size in sizes)
        assert max(sizes) - min(sizes) <= 1

    def test_plan_chunks_degrades_when_disabled(self):
        gov = Governor(GovernancePolicy(allow_chunk=False))
        gov.bind_words(100)
        with pytest.raises(GovernanceDegraded):
            gov.plan_chunks(200, "ctx")
        assert gov.degraded_reason

    def test_plan_chunks_degrades_over_max(self):
        gov = Governor(GovernancePolicy(max_chunks=2))
        gov.bind_words(100)
        with pytest.raises(GovernanceDegraded):
            gov.plan_chunks(1000, "ctx")

    def test_degrade_respects_allow_degrade(self):
        gov = Governor(GovernancePolicy(allow_degrade=False))
        gov.bind_words(100)
        gov.degrade("reason", "ctx")  # records, does not raise
        assert gov.degraded_reason == "reason"
        assert [e.kind for e in gov.events] == [DEGRADE]

    def test_record_watermark_dedups_context(self):
        gov = Governor()
        gov.bind_words(100)
        gov.record_watermark("phase 1", 95, 100)
        gov.record_watermark("phase 1", 99, 100)
        gov.record_watermark("phase 2", 95, 100)
        assert [e.kind for e in gov.events] == [WATERMARK, WATERMARK]
        assert not gov.triggered  # watermarks alone are not interventions

    def test_event_cap(self):
        gov = Governor()
        gov.bind_words(100)
        for index in range(_MAX_EVENTS + 10):
            gov.record_watermark(f"ctx {index}", 95, 100)
        assert len(gov.events) == _MAX_EVENTS
        assert gov.dropped_events == 10
        assert gov.summary()["dropped_events"] == 10

    def test_broadcast_chunked(self):
        cluster = _FakeCluster()
        gov = Governor()
        gov.bind_words(100)  # soft 90
        gov.broadcast(cluster, 50, "small")
        assert cluster.broadcasts == [(50, "small")]
        cluster.broadcasts.clear()
        gov.broadcast(cluster, 200, "big")
        assert sum(words for words, _ in cluster.broadcasts) == 200
        assert all(words <= 90 for words, _ in cluster.broadcasts)
        assert "[chunk 1/" in cluster.broadcasts[0][1]

    def test_governed_broadcast_without_governor(self):
        cluster = _FakeCluster()
        governed_broadcast(cluster, 500, "ctx", None)
        assert cluster.broadcasts == [(500, "ctx")]

    def test_summary_shape(self):
        gov = Governor()
        gov.bind_words(100)
        gov.plan_chunks(200, "ctx")
        payload = gov.summary()
        assert payload["enabled"] and payload["triggered"]
        assert payload["counts"] == {CHUNK: 1}
        assert json.loads(json.dumps(payload)) == payload


# ---------------------------------------------------------------------------
# cluster plumbing
# ---------------------------------------------------------------------------


class TestClusterGovernance:
    def test_peak_transient_tracks_inboxes_and_broadcasts(self):
        cluster = MPCCluster(3, words_per_machine=100)
        cluster.exchange(
            {0: [Message(1, 40, None)], 2: [Message(1, 30, None)]}
        )
        assert cluster.peak_transient_words == 70
        cluster.broadcast(90)
        assert cluster.peak_transient_words == 90

    def test_attach_governor_soft_watermark(self):
        cluster = MPCCluster(2, words_per_machine=100)
        gov = Governor()
        gov.bind(cluster)
        cluster.machine(0).store("k", None, 95, context="hot phase")
        kinds = [e.kind for e in gov.events]
        assert WATERMARK in kinds

    def test_exchange_feeds_estimator(self):
        cluster = MPCCluster(3, words_per_machine=1000)
        gov = Governor()
        gov.bind(cluster)
        cluster.exchange(
            {0: [Message(1, 300, None)], 2: [Message(1, 100, None)]}
        )
        assert gov.estimator.observations == 1


# ---------------------------------------------------------------------------
# façade integration
# ---------------------------------------------------------------------------

# Confirmed breach cells: these (task, graph) pairs abort ungoverned at
# BUDGET and must complete governed.
BREACH_CELLS = [
    ("mis", powerlaw_graph),
    ("fractional_matching", powerlaw_graph),
    ("fractional_matching", dense_graph),
    ("matching", dense_graph),
]


class TestFacadeGovernance:
    @pytest.mark.parametrize("task,make_graph", BREACH_CELLS)
    def test_breach_cells_rescued(self, task, make_graph):
        graph = make_graph()
        with pytest.raises(MemoryExceededError):
            solve(task, graph, backend="mpc", seed=0, budget=BUDGET)
        report = solve(
            task, graph, backend="mpc", seed=0, budget=BUDGET, governance=True
        )
        assert report.valid
        record = report.extras["governance"]
        assert record["triggered"] or record["degraded"]
        assert report.backend == "mpc"

    def test_benign_run_byte_identical(self):
        graph = gnp_random_graph(128, 0.05, seed=3)
        bare = solve("mis", graph, backend="mpc", seed=7)
        governed = solve("mis", graph, backend="mpc", seed=7, governance=True)
        assert governed.solution == bare.solution
        assert governed.rounds == bare.rounds
        record = governed.extras["governance"]
        assert not record["triggered"]
        assert record["events"] == []

    def test_forced_degrade_records_fallback(self):
        policy = {"allow_sparsify": False, "allow_chunk": False}
        report = solve(
            "mis", powerlaw_graph(), backend="mpc", seed=0, budget=BUDGET,
            governance=policy,
        )
        assert report.valid
        record = report.extras["governance"]
        assert record["degraded"]
        assert record["degraded_to"] == "greedy"
        assert record["reason"]
        # The requested backend stays on the report; the record tells the
        # degradation story.
        assert report.backend == "mpc"

    def test_every_rung_disabled_preserves_failure(self):
        policy = {
            "allow_sparsify": False,
            "allow_chunk": False,
            "allow_degrade": False,
        }
        with pytest.raises(MemoryExceededError):
            solve(
                "mis", powerlaw_graph(), backend="mpc", seed=0,
                budget=BUDGET, governance=policy,
            )

    def test_non_supporting_backend_ignores_governance(self):
        report = solve(
            "mis", gnp_random_graph(64, 0.1, seed=0), backend="greedy",
            seed=0, governance=True,
        )
        assert report.valid
        assert "governance" not in report.extras

    def test_executor_rejected(self):
        with pytest.raises(ValueError, match="governance requires executor"):
            solve(
                "mis", gnp_random_graph(32, 0.1, seed=0), backend="mpc",
                seed=0, governance=True, executor="local",
            )

    def test_governed_weighted_matching(self):
        from repro.verify.differential import attach_weights

        weighted = attach_weights(dense_graph(64), seed=1)
        report = solve(
            "weighted_matching", weighted, backend="mpc", seed=0,
            budget=BUDGET, governance=True,
        )
        assert report.valid

    def test_sweep_threads_governance(self):
        specs = sweep(
            ["mis"],
            [gnp_random_graph(48, 0.1, seed=0)],
            backends=["mpc"],
            seeds=[0],
            governance=True,
        )
        assert all(spec.governance is True for spec in specs)


# ---------------------------------------------------------------------------
# CLI parsing
# ---------------------------------------------------------------------------


class TestGovernanceCLI:
    def test_parse_governance(self):
        from repro.api.__main__ import _parse_governance

        assert _parse_governance(None) is None
        assert _parse_governance("off") is None
        assert _parse_governance("{}") == GovernancePolicy()
        parsed = _parse_governance('{"watermark": 0.8}')
        assert parsed.watermark == 0.8
        with pytest.raises(ValueError):
            _parse_governance('"not a dict"')
        with pytest.raises(ValueError):
            _parse_governance('{"bogus_knob": 1}')

    def test_solve_cli_governed(self, capsys):
        from repro.api.__main__ import main

        status = main(
            [
                "solve", "--task", "mis", "--graph", "ba:n=96,attachment=8",
                "--seed", "0", "--budget", str(BUDGET),
                "--governance", "{}", "--json",
            ]
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["extras"]["governance"]["enabled"]
