"""Unit tests for the ablation harness and the CLI entry point."""

import pytest

from repro.analysis import ablations
from repro.analysis.__main__ import _REGISTRY, main


class TestAblations:
    def test_a01_rows(self):
        rows = ablations.run_a01_threshold_ablation(sizes=(128,), seed=1)
        assert len(rows) == 1
        assert 0.0 <= rows[0]["bad_fraction_random"] <= 1.0
        assert 0.0 <= rows[0]["bad_fraction_fixed"] <= 1.0

    def test_a02_monotone_phases(self):
        rows = ablations.run_a02_alpha_ablation(
            n=512, alphas=(0.5, 0.9), avg_degree=96.0, seed=2
        )
        assert rows[0]["prefix_phases"] <= rows[1]["prefix_phases"]

    def test_a03_phase_tradeoff(self):
        rows = ablations.run_a03_iterations_scale_ablation(
            n=256, scales=(1.0, 4.0), seed=3
        )
        assert rows[0]["phases"] >= rows[1]["phases"]

    def test_a04_detects_memory_violation(self):
        rows = ablations.run_a04_memory_ablation(
            n=256, memory_factors=(8.0, 0.1), seed=4
        )
        assert rows[0]["status"] == "ok"
        assert rows[1]["status"].startswith("memory exceeded")


class TestCLI:
    def test_registry_complete(self):
        for exp in (
            [f"e{i:02d}" for i in range(1, 13)] + [f"a{i:02d}" for i in range(1, 5)]
        ):
            assert exp in _REGISTRY

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "a04" in out

    def test_unknown_experiment(self, capsys):
        assert main(["zzz"]) == 2

    def test_help(self, capsys):
        assert main([]) == 0
        assert "python -m repro.analysis" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert main(["a04"]) == 0
        out = capsys.readouterr().out
        assert "memory_factor" in out
