"""Unit tests for the (1+ε) augmenting-path improvement (Corollary 1.3)."""

import pytest

from repro.baselines.blossom import maximum_matching
from repro.baselines.hopcroft_karp import hopcroft_karp_matching
from repro.core.augmenting import (
    find_disjoint_augmenting_paths,
    improve_matching,
    one_plus_eps_matching,
)
from repro.graph.generators import (
    gnp_random_graph,
    path_graph,
    random_bipartite_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_matching


class TestPathFinding:
    def test_finds_length_one_augmenting_path(self):
        g = Graph(2, [(0, 1)])
        paths = find_disjoint_augmenting_paths(g, set(), max_path_length=1)
        assert paths == [[0, 1]]

    def test_finds_length_three_path(self):
        # P4 matched in the middle: augmenting path uses all 3 edges.
        g = path_graph(4)
        paths = find_disjoint_augmenting_paths(g, {(1, 2)}, max_path_length=3)
        assert len(paths) == 1
        assert len(paths[0]) == 4

    def test_respects_length_bound(self):
        g = path_graph(4)
        paths = find_disjoint_augmenting_paths(g, {(1, 2)}, max_path_length=1)
        assert paths == []

    def test_paths_are_vertex_disjoint(self):
        g = gnp_random_graph(100, 0.06, seed=1)
        paths = find_disjoint_augmenting_paths(g, set(), max_path_length=3)
        seen = set()
        for path in paths:
            assert not (set(path) & seen)
            seen.update(path)


class TestImprovement:
    def test_empty_matching_becomes_maximal_plus(self):
        g = path_graph(7)
        outcome = improve_matching(g, set(), max_path_length=5, seed=2)
        assert is_matching(g, outcome.matching)
        assert len(outcome.matching) == 3  # optimum on P7

    def test_never_shrinks(self):
        g = gnp_random_graph(80, 0.08, seed=3)
        from repro.baselines.greedy import greedy_maximal_matching

        start = greedy_maximal_matching(g, seed=3)
        outcome = improve_matching(g, start, max_path_length=5, seed=3)
        assert len(outcome.matching) >= len(start)
        assert is_matching(g, outcome.matching)


class TestOnePlusEps:
    def test_bipartite_guarantee(self):
        """On bipartite graphs the short-path search is exact, so the
        Hopcroft-Karp bound makes (1+ε) a theorem, not a heuristic."""
        eps = 0.34  # k=3, paths up to length 5
        g = random_bipartite_graph(60, 60, 0.08, seed=4)
        result = one_plus_eps_matching(g, epsilon=eps, seed=4)
        optimum = len(hopcroft_karp_matching(g))
        assert len(result.matching) >= optimum / (1 + eps) - 1e-9
        assert is_matching(g, result.matching)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_general_graph_quality(self, seed):
        eps = 0.25
        g = gnp_random_graph(120, 0.06, seed=seed)
        result = one_plus_eps_matching(g, epsilon=eps, seed=seed)
        optimum = len(maximum_matching(g))
        assert len(result.matching) >= optimum / (1 + eps + 0.1)

    def test_tighter_eps_not_worse(self):
        g = random_bipartite_graph(40, 40, 0.1, seed=7)
        loose = one_plus_eps_matching(g, epsilon=0.5, seed=7)
        tight = one_plus_eps_matching(g, epsilon=0.2, seed=7)
        assert len(tight.matching) >= len(loose.matching) - 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            one_plus_eps_matching(path_graph(4), epsilon=0.0)

    def test_path_length_schedule(self):
        g = path_graph(6)
        result = one_plus_eps_matching(g, epsilon=0.5, seed=8)
        assert result.max_path_length == 3  # k = 2
