"""Unit tests for the line-graph MIS → maximal matching reduction."""

import pytest

from repro.core.line_graph_matching import maximal_matching_via_line_graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_maximal_matching


class TestLineGraphMatching:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_output_is_maximal_matching(self, seed):
        g = gnp_random_graph(80, 0.08, seed=seed)
        result = maximal_matching_via_line_graph(g, seed=seed)
        assert is_maximal_matching(g, result.matching)

    def test_path(self):
        result = maximal_matching_via_line_graph(path_graph(9), seed=1)
        assert is_maximal_matching(path_graph(9), result.matching)

    def test_cycle(self):
        result = maximal_matching_via_line_graph(cycle_graph(10), seed=2)
        assert is_maximal_matching(cycle_graph(10), result.matching)

    def test_star_yields_single_edge(self):
        result = maximal_matching_via_line_graph(star_graph(12), seed=3)
        assert len(result.matching) == 1

    def test_line_graph_stats_reported(self):
        g = complete_graph(8)
        result = maximal_matching_via_line_graph(g, seed=4)
        assert result.line_graph_vertices == g.num_edges
        assert result.line_graph_edges > 0

    def test_blowup_guard(self):
        g = star_graph(3000)  # line graph is K_3000: ~4.5M edges
        with pytest.raises(ValueError, match="line graph"):
            maximal_matching_via_line_graph(g, max_line_graph_edges=10_000)

    def test_agrees_with_direct_algorithm_on_maximality(self):
        """Cross-check: both the reduction and the direct pipeline must
        produce maximal matchings of the same graph."""
        from repro.core.integral import mpc_maximum_matching

        g = gnp_random_graph(60, 0.1, seed=5)
        via_line = maximal_matching_via_line_graph(g, seed=5)
        direct = mpc_maximum_matching(g, seed=5)
        assert is_maximal_matching(g, via_line.matching)
        assert is_maximal_matching(g, direct.matching)
        # Maximal matchings are within 2x of each other.
        assert len(via_line.matching) <= 2 * len(direct.matching)
        assert len(direct.matching) <= 2 * len(via_line.matching)

    def test_empty_graph(self):
        result = maximal_matching_via_line_graph(Graph(5), seed=6)
        assert result.matching == set()
