"""Unit tests for the weighted matching reduction (Corollary 1.4)."""

import pytest

from repro.baselines.exact import brute_force_maximum_weight_matching
from repro.core.weighted_matching import (
    mpc_weighted_matching,
    weight_classes,
)
from repro.graph.generators import random_weighted_graph
from repro.graph.properties import is_matching
from repro.graph.weighted import WeightedGraph


class TestWeightClasses:
    def test_heaviest_class_first(self):
        wg = WeightedGraph(6, [(0, 1, 100.0), (2, 3, 10.0), (4, 5, 5.0)])
        classes = weight_classes(wg, epsilon=0.1)
        assert classes[0] == [(0, 1)]
        flattened = [e for cls in classes for e in cls]
        assert (2, 3) in flattened and (4, 5) in flattened

    def test_below_floor_edge_dropped(self):
        # floor = eps * w_max / n = 0.1 * 100 / 6 = 1.67 > 1.0
        wg = WeightedGraph(6, [(0, 1, 100.0), (4, 5, 1.0)])
        flattened = [e for cls in weight_classes(wg, epsilon=0.1) for e in cls]
        assert (4, 5) not in flattened

    def test_tiny_weights_dropped(self):
        wg = WeightedGraph(4, [(0, 1, 1000.0), (2, 3, 1e-9)])
        classes = weight_classes(wg, epsilon=0.1)
        flattened = [e for cls in classes for e in cls]
        assert (2, 3) not in flattened

    def test_empty_graph(self):
        assert weight_classes(WeightedGraph(3), epsilon=0.1) == []

    def test_class_boundaries_geometric(self):
        wg = WeightedGraph(8, [(0, 1, 8.0), (2, 3, 7.9), (4, 5, 4.0), (6, 7, 1.0)])
        classes = weight_classes(wg, epsilon=0.1)
        # 8.0 and 7.9 fall in the same (1+eps) class.
        assert {(0, 1), (2, 3)} <= set(classes[0])


class TestWeightedMatching:
    def test_output_is_matching(self):
        wg = random_weighted_graph(80, 0.1, seed=1)
        result = mpc_weighted_matching(wg, epsilon=0.1, seed=1)
        assert is_matching(wg.structure, result.matching)
        assert result.weight == pytest.approx(
            wg.matching_weight(result.matching)
        )

    def test_ratio_against_exact_on_tiny_graph(self):
        wg = random_weighted_graph(10, 0.5, distribution="zipf", seed=2)
        _, optimum = brute_force_maximum_weight_matching(wg)
        result = mpc_weighted_matching(wg, epsilon=0.1, seed=2)
        # Greedy-by-class is a (2+O(eps)) approximation.
        assert result.weight >= optimum / 2.5

    def test_heavy_edge_always_matched(self):
        """An edge 10x heavier than everything else must be taken."""
        wg = WeightedGraph(6, [(0, 1, 1000.0), (1, 2, 1.0), (3, 4, 1.0)])
        result = mpc_weighted_matching(wg, epsilon=0.1, seed=3)
        assert (0, 1) in result.matching

    def test_empty(self):
        result = mpc_weighted_matching(WeightedGraph(4), epsilon=0.1)
        assert result.matching == set()
        assert result.weight == 0.0

    def test_determinism(self):
        wg = random_weighted_graph(50, 0.15, seed=4)
        a = mpc_weighted_matching(wg, epsilon=0.1, seed=5)
        b = mpc_weighted_matching(wg, epsilon=0.1, seed=5)
        assert a.matching == b.matching

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            mpc_weighted_matching(WeightedGraph(2), epsilon=0.9)

    def test_per_class_accounting(self):
        wg = random_weighted_graph(60, 0.1, distribution="zipf", seed=6)
        result = mpc_weighted_matching(wg, epsilon=0.2, seed=6)
        assert sum(result.per_class_sizes) == len(result.matching)
        assert len(result.per_class_sizes) == result.classes
