"""Unit tests for the Ghaffari desire-level LOCAL MIS process."""

import pytest

from repro.core.config import MISConfig
from repro.core.ghaffari_local import (
    DESIRE_CAP,
    INITIAL_DESIRE,
    ghaffari_round,
    run_ghaffari_process,
)
from repro.core.mis_mpc import mis_mpc
from repro.core.sparsified_mis import sparsified_mis
from repro.graph.generators import cycle_graph, gnp_random_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.properties import is_independent_set, is_maximal_independent_set
from repro.utils.rng import make_rng


class TestGhaffariRound:
    def test_winners_are_independent(self):
        g = gnp_random_graph(60, 0.2, seed=1)
        active = set(g.vertices())
        desire = {v: INITIAL_DESIRE for v in active}
        winners = ghaffari_round(g, active, desire, make_rng(1))
        assert is_independent_set(g, winners)

    def test_desire_levels_update(self):
        """High effective degree halves desire; low doubles it (capped)."""
        g = star_graph(10)
        active = set(g.vertices())
        desire = {v: INITIAL_DESIRE for v in active}
        ghaffari_round(g, active, desire, make_rng(2))
        # Center sees effective degree 10 * 0.5 = 5 >= 2: halved.
        assert desire[0] == INITIAL_DESIRE / 2
        # A leaf sees 0.5 < 2: doubled but capped at 1/2.
        assert desire[1] == DESIRE_CAP

    def test_desire_never_exceeds_cap(self):
        g = cycle_graph(8)
        active = set(g.vertices())
        desire = {v: INITIAL_DESIRE for v in active}
        rng = make_rng(3)
        for _ in range(20):
            ghaffari_round(g, active, desire, rng)
        assert all(p <= DESIRE_CAP + 1e-12 for p in desire.values())


class TestGhaffariProcess:
    def test_clears_sparse_graph(self):
        g = gnp_random_graph(150, 0.03, seed=4)
        residual = g.copy()
        active = set(g.vertices())
        mis, rounds = run_ghaffari_process(residual, active, make_rng(4), rounds=200)
        assert not active  # everything decided
        assert is_maximal_independent_set(g, mis)
        assert rounds <= 200

    def test_respects_round_budget(self):
        g = gnp_random_graph(100, 0.1, seed=5)
        residual = g.copy()
        active = set(g.vertices())
        _, rounds = run_ghaffari_process(residual, active, make_rng(5), rounds=3)
        assert rounds <= 3


class TestStrategyIntegration:
    def test_sparsified_with_ghaffari_is_maximal(self):
        g = gnp_random_graph(200, 0.03, seed=6)
        outcome = sparsified_mis(g, seed=6, strategy="ghaffari")
        assert is_maximal_independent_set(g, outcome.mis)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            sparsified_mis(Graph(3), strategy="magic")

    def test_mis_mpc_with_ghaffari_strategy(self):
        g = gnp_random_graph(300, 0.1, seed=7)
        config = MISConfig(sparse_strategy="ghaffari")
        result = mis_mpc(g, seed=7, config=config)
        assert is_maximal_independent_set(g, result.mis)

    def test_config_validates_strategy(self):
        with pytest.raises(ValueError):
            MISConfig(sparse_strategy="magic")
