"""Shared fixtures: small graphs with known optima."""

from __future__ import annotations

import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: nightly-scale stress tests; skipped unless REPRO_RUN_SLOW=1 "
        "(run with: REPRO_RUN_SLOW=1 pytest -m slow)",
    )

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """K3: max matching 1, min VC 2, max IS 1."""
    return complete_graph(3)


@pytest.fixture
def path5() -> Graph:
    """P5 (4 edges): max matching 2, min VC 2."""
    return path_graph(5)


@pytest.fixture
def star10() -> Graph:
    """Star with 10 leaves: max matching 1, min VC 1, max IS 10."""
    return star_graph(10)


@pytest.fixture
def cycle6() -> Graph:
    """C6: max matching 3, min VC 3."""
    return cycle_graph(6)


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph: perfect matching (5), max IS 4, min VC 6."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return Graph(10, outer + spokes + inner)


@pytest.fixture
def medium_gnp() -> Graph:
    """A deterministic medium G(n, p) instance for algorithm tests."""
    return gnp_random_graph(200, 0.05, seed=42)


@pytest.fixture
def empty_graph() -> Graph:
    """A graph with vertices but no edges."""
    return Graph(7)
