"""repro.dist: transports, executor, kernels, and the parity suite.

The load-bearing contract is *byte-identity*: for a fixed seed, every MPC
solver must produce the same solution, the same round count, and the same
communication/memory audit whether it runs fully in-process
(``executor=None``), through the in-process reference transport
(``executor="local"``), or partitioned over real worker processes
(``executor="parallel"``).  The fault tests pin the other contract: a
worker failure of any kind surfaces as :class:`DistExecutionError`, never
a hang.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.api import registry, solve
from repro.dist import (
    DistExecutionError,
    DistExecutor,
    DistTimeoutError,
    LocalTransport,
    MPITransport,
    MultiprocessTransport,
    resolve_executor,
)
from repro.dist.kernels import get_kernel, kernel, kernel_names
from repro.dist.pool import dedupe_by_identity, object_pool, worker_object
from repro.graph.generators import gnp_random_graph, random_weighted_graph


@kernel("test.map_crash")
def _map_crash_kernel(ctx, payload):
    """Test kernel: die mid-chunk on the victim worker (fork-inherited).

    Registered at module import so forked transport workers carry it;
    crashing partway through a task chunk exercises the mid-``map_tasks``
    failure window (some results computed, none delivered).
    """
    results = []
    for task in payload["tasks"]:
        if task == "boom" and ctx.worker_id == payload["shared"]["victim"]:
            os._exit(5)
        results.append(task * 2)
    return results

# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


def _echo_all(transport, value):
    payloads = [
        {"value": (worker_id, value)} for worker_id in range(transport.workers)
    ]
    return transport.step("debug.echo", payloads)


class TestLocalTransport:
    def test_echo_reports_worker_identity(self):
        with LocalTransport(3) as transport:
            results = _echo_all(transport, "ping")
        assert [r["worker_id"] for r in results] == [0, 1, 2]
        assert all(r["num_workers"] == 3 for r in results)
        assert results[1]["payload"] == (1, "ping")

    def test_sessions_shared_by_every_worker(self):
        with LocalTransport(2) as transport:
            transport.install("s", {"x": np.arange(5), "y": np.ones(3)})
            results = transport.step(
                "debug.echo", [{"sessions": ["s"]}] * 2
            )
            for r in results:
                assert r["session_sums"]["s"] == {"x": 10.0, "y": 3.0}
            transport.drop("s")
            with pytest.raises(DistExecutionError, match="no session 's'"):
                transport.step("debug.echo", [{"sessions": ["s"]}] * 2)

    def test_payload_count_must_match_workers(self):
        with LocalTransport(2) as transport:
            with pytest.raises(ValueError, match="one payload per worker"):
                transport.step("debug.echo", [{}])

    def test_closed_transport_raises(self):
        transport = LocalTransport(2)
        transport.close()
        with pytest.raises(DistExecutionError, match="closed"):
            transport.step("debug.echo", [{}, {}])

    def test_kernel_error_carries_worker_id(self):
        with LocalTransport(2) as transport:
            with pytest.raises(DistExecutionError) as info:
                transport.step(
                    "debug.fail", [{"fail": False}, {"fail": True}]
                )
        assert info.value.worker_id == 1
        assert "injected kernel failure" in str(info.value)


class TestMultiprocessTransport:
    def test_echo_and_shared_sessions_match_local(self):
        arrays = {"x": np.arange(100, dtype=np.int64), "y": np.zeros(0)}
        with LocalTransport(2) as local, MultiprocessTransport(2) as multi:
            local.install("s", arrays)
            multi.install("s", arrays)
            payloads = [{"value": i, "sessions": ["s"]} for i in range(2)]
            assert local.step("debug.echo", payloads) == multi.step(
                "debug.echo", payloads
            )

    def test_kernel_error_leaves_transport_usable(self):
        with MultiprocessTransport(2) as transport:
            with pytest.raises(DistExecutionError) as info:
                transport.step(
                    "debug.fail", [{"fail": True}, {"fail": False}]
                )
            assert info.value.worker_id == 0
            assert info.value.phase == "debug.fail"
            assert info.value.attempts == 1
            assert info.value.recovery == "none"
            assert "ValueError" in str(info.value)
            # The workers survived the kernel exception: same pool, next step.
            results = _echo_all(transport, "still-alive")
            assert [r["worker_id"] for r in results] == [0, 1]

    def test_worker_death_raises_cleanly_and_closes(self):
        transport = MultiprocessTransport(2)
        try:
            with pytest.raises(DistExecutionError, match="died") as info:
                transport.step(
                    "debug.crash", [{"exit": 1}, {"exit": None}]
                )
            assert info.value.worker_id == 0
            assert info.value.phase == "debug.crash"
            assert info.value.attempts == 1
            assert info.value.recovery == "transport-closed"
            # Everything is torn down; further use reports closed, not a hang.
            with pytest.raises(DistExecutionError, match="closed"):
                _echo_all(transport, "after-death")
        finally:
            transport.close()

    def test_duplicate_session_key_rejected(self):
        with MultiprocessTransport(2) as transport:
            transport.install("s", {"x": np.arange(3)})
            with pytest.raises(ValueError, match="already installed"):
                transport.install("s", {"x": np.arange(3)})

    def test_mpi_transport_is_a_documented_stub(self):
        with pytest.raises(NotImplementedError, match="DISTRIBUTED.md"):
            MPITransport(2)


# ---------------------------------------------------------------------------
# pool plumbing (shared with repro.api.batch)
# ---------------------------------------------------------------------------


def _lookup(index):
    return worker_object(index)


class TestPool:
    def test_dedupe_by_identity(self):
        a, b = object(), object()
        table, indices = dedupe_by_identity([a, b, a, a, b])
        assert table == [a, b]
        assert indices == [0, 1, 0, 0, 1]
        assert all(table[i] is item for i, item in zip(indices, [a, b, a, a, b]))

    def test_dedupe_is_identity_not_equality(self):
        x, y = [1, 2], [1, 2]
        table, indices = dedupe_by_identity([x, y])
        assert len(table) == 2
        assert indices == [0, 1]

    def test_object_pool_ships_table_once(self):
        with object_pool(2, ["alpha", "beta"]) as pool:
            assert pool.map(_lookup, [0, 1, 0]) == ["alpha", "beta", "alpha"]


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


class TestDistExecutor:
    def test_partition_is_balanced_and_covers(self):
        executor = DistExecutor(LocalTransport(3))
        bounds = executor.partition(10)
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        assert executor.partition(2) == [(0, 1), (1, 2), (2, 2)]

    def test_map_tasks_order_via_machine_kernel(self):
        # matching.machines returns one list per task in task order; empty
        # parts exercise uneven chunking.
        from repro.core.thresholds import ThresholdOracle

        oracle = ThresholdOracle(0.1, 0.2, seed=7)
        tasks = []
        for k in (1, 2, 3, 4, 5):
            part_ids = np.arange(k, dtype=np.int64)
            tasks.append(
                (
                    part_ids,
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(k),
                )
            )
        shared = {
            "oracle": oracle,
            "start": 0,
            "iterations": 1,
            "machines": 2,
            "w0": 0.1,
            "growth": 1.1,
        }
        with DistExecutor(LocalTransport(2)) as executor:
            results = executor.map_tasks("matching.machines", tasks, shared=shared)
        assert len(results) == 5

    def test_phase_walls_accumulate(self):
        with DistExecutor(LocalTransport(2)) as executor:
            executor.broadcast_step("debug.echo", {}, phase="a")
            executor.broadcast_step("debug.echo", {}, phase="a")
            executor.broadcast_step("debug.echo", {}, phase="b")
            walls = {w["phase"]: w for w in executor.phase_walls()}
            assert walls["a"]["steps"] == 2
            assert walls["b"]["steps"] == 1
            executor.reset_metrics()
            assert executor.phase_walls() == []

    def test_open_session_keys_are_unique(self):
        with DistExecutor(LocalTransport(2)) as executor:
            first = executor.open_session("hint", {"x": np.arange(2)})
            second = executor.open_session("hint", {"x": np.arange(2)})
            assert first != second


class TestResolveExecutor:
    def test_none_passthrough(self):
        assert resolve_executor(None) == (None, False)

    def test_workers_without_executor_is_an_error(self):
        with pytest.raises(ValueError, match="requires an executor"):
            resolve_executor(None, workers=2)

    def test_string_kinds_are_owned(self):
        executor, owned = resolve_executor("local", workers=3)
        assert owned and executor.workers == 3 and not executor.distributed
        executor.close()

    def test_instance_is_not_owned(self):
        with DistExecutor(LocalTransport(2)) as instance:
            executor, owned = resolve_executor(instance)
            assert executor is instance and not owned
            with pytest.raises(ValueError, match="conflicts"):
                resolve_executor(instance, workers=4)

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("cluster")

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            resolve_executor(42)

    def test_mpi_is_not_implemented(self):
        with pytest.raises(NotImplementedError):
            resolve_executor("mpi")

    def test_bad_worker_count_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_executor("local", workers=0)


# ---------------------------------------------------------------------------
# parity suite: distributed == sequential, byte for byte
# ---------------------------------------------------------------------------

MPC_TASKS = [t for t in registry.tasks() if "mpc" in registry.backends(t)]
PARITY_CASES = [(n, seed) for n in (80, 150) for seed in (3, 11)]


def _graph_for(task, n, seed=7):
    if task == "weighted_matching":
        return random_weighted_graph(n, 8.0 / n, seed=seed)
    return gnp_random_graph(n, 8.0 / n, seed=seed)


def report_snapshot(report):
    """Everything that must match across executors, as plain JSON data."""
    data = json.loads(report.to_json())
    data.pop("wall_time_s")
    data.pop("peak_rss_bytes")
    data.get("extras", {}).pop("executor", None)
    # Recovery events carry latencies/attempt counts that legitimately
    # vary run to run; the *solution* bytes are what parity pins.
    data.get("extras", {}).pop("faults", None)
    return data


class TestParity:
    @pytest.mark.parametrize("task", MPC_TASKS)
    @pytest.mark.parametrize("n,seed", PARITY_CASES)
    def test_kernel_path_matches_sequential(self, task, n, seed):
        # LocalTransport with distributed=True forces the partitioned
        # kernel path in-process: full logic coverage without process
        # startup per case.
        graph = _graph_for(task, n)
        baseline = report_snapshot(
            solve(task, graph, backend="mpc", seed=seed)
        )
        with DistExecutor(LocalTransport(2), distributed=True) as executor:
            distributed = report_snapshot(
                solve(task, graph, backend="mpc", seed=seed, executor=executor)
            )
        assert distributed == baseline

    @pytest.mark.parametrize("task", MPC_TASKS)
    def test_parallel_processes_match_sequential(self, task):
        graph = _graph_for(task, 120)
        baseline = report_snapshot(
            solve(task, graph, backend="mpc", seed=5)
        )
        parallel = report_snapshot(
            solve(
                task,
                graph,
                backend="mpc",
                seed=5,
                executor="parallel",
                workers=2,
            )
        )
        assert parallel == baseline

    def test_local_executor_matches_sequential(self):
        graph = gnp_random_graph(150, 0.05, seed=7)
        baseline = report_snapshot(
            solve("fractional_matching", graph, backend="mpc", seed=5)
        )
        local = report_snapshot(
            solve(
                "fractional_matching",
                graph,
                backend="mpc",
                seed=5,
                executor="local",
            )
        )
        assert local == baseline

    def test_worker_count_invariance(self):
        graph = gnp_random_graph(200, 0.04, seed=9)
        snapshots = []
        for workers in (1, 2, 3):
            with DistExecutor(
                LocalTransport(workers), distributed=True
            ) as executor:
                snapshots.append(
                    report_snapshot(
                        solve(
                            "fractional_matching",
                            graph,
                            backend="mpc",
                            seed=13,
                            executor=executor,
                        )
                    )
                )
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_budget_audit_identical_under_parallel(self):
        # verify=True attaches the BudgetPolicy certificate (round budget,
        # per-machine words, total communication); it must be identical —
        # the cluster accounting never leaves the driver.
        graph = gnp_random_graph(150, 0.05, seed=7)
        baseline = report_snapshot(
            solve("fractional_matching", graph, backend="mpc", seed=5, verify=True)
        )
        parallel = report_snapshot(
            solve(
                "fractional_matching",
                graph,
                backend="mpc",
                seed=5,
                verify=True,
                executor="parallel",
                workers=2,
            )
        )
        assert all(
            check["passed"] for check in baseline["verification"]["checks"]
        )
        assert parallel == baseline

    def test_worker_death_mid_solve_raises_dist_error(self):
        # Kill a worker once the direct-simulation session is installed:
        # the solver must surface DistExecutionError, not hang or return
        # a partial result.
        graph = gnp_random_graph(150, 0.05, seed=7)
        transport = MultiprocessTransport(2)
        executor = DistExecutor(transport, kind="parallel")
        original_step = transport.step

        def sabotaged_step(kernel, payloads):
            if kernel == "matching.direct_step":
                return original_step(
                    "debug.crash", [{"exit": 3}] * len(payloads)
                )
            return original_step(kernel, payloads)

        transport.step = sabotaged_step
        try:
            with pytest.raises(DistExecutionError, match="died"):
                solve(
                    "fractional_matching",
                    graph,
                    backend="mpc",
                    seed=5,
                    executor=executor,
                )
        finally:
            transport.step = original_step
            executor.close()


# ---------------------------------------------------------------------------
# failure windows: barriers, chunk streams, deadlines
# ---------------------------------------------------------------------------


class TestFailureWindows:
    def test_worker_death_during_broadcast_barrier(self):
        # One worker dies while the driver sits in the broadcast barrier
        # waiting for its reply: the step must raise, not hang.
        transport = MultiprocessTransport(2)
        executor = DistExecutor(transport, kind="parallel")
        try:
            assert len(executor.broadcast_step("debug.echo", {"value": 1})) == 2
            transport.kill_worker(1)
            with pytest.raises(DistExecutionError, match="died") as info:
                executor.broadcast_step("debug.echo", {"value": 2})
            assert info.value.worker_id == 1
            assert info.value.recovery == "transport-closed"
        finally:
            executor.close()

    def test_worker_death_mid_map_tasks_chunk(self):
        # The victim dies partway through its task chunk — results it
        # already computed are lost with it, and the driver must observe
        # a dead pipe for the whole chunk, not a short result list.
        transport = MultiprocessTransport(2)
        executor = DistExecutor(transport, kind="parallel")
        try:
            tasks = ["a", "b", "boom", "c"]
            with pytest.raises(DistExecutionError, match="died") as info:
                executor.map_tasks(
                    "test.map_crash", tasks, shared={"victim": 1}
                )
            assert info.value.worker_id == 1
            assert info.value.phase == "test.map_crash"
        finally:
            executor.close()

    def test_sleeping_kernel_raises_within_deadline(self):
        # A kernel that sleeps past the receive deadline must raise a
        # DistTimeoutError promptly — the poll loop, not a blocked read,
        # owns the wait.
        transport = MultiprocessTransport(2, step_timeout_s=1.0)
        started = time.monotonic()
        try:
            with pytest.raises(DistTimeoutError, match="timed out") as info:
                transport.step(
                    "debug.sleep", [{"seconds": 30.0}, {"seconds": 0.0}]
                )
        finally:
            transport.close()
        elapsed = time.monotonic() - started
        assert elapsed < 10.0, f"deadline did not bound the wait ({elapsed:.1f}s)"
        assert info.value.worker_id == 0
        assert info.value.recovery == "transport-closed"

    def test_close_escalates_past_sigterm_ignoring_worker(self):
        # A worker that masks SIGTERM and sleeps survives terminate();
        # close() must escalate to SIGKILL within its timeout instead of
        # hanging, and the shared segments must still be unlinked.
        transport = MultiprocessTransport(2, close_timeout_s=0.3)
        transport.install("s", {"x": np.arange(4)})
        segment_names = [
            segment.name for segment in transport._segments["s"]
        ]
        # Fire-and-forget: the wedge kernel never replies in time, so
        # send the command directly and close while the workers sleep.
        from repro.dist.transport import _send_msg

        for handle in transport._workers:
            _send_msg(handle.conn, ("step", "debug.wedge", {"seconds": 30.0}))
        time.sleep(0.2)  # let the workers enter the wedge
        started = time.monotonic()
        transport.close()
        assert time.monotonic() - started < 5.0
        from multiprocessing import shared_memory

        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# façade integration
# ---------------------------------------------------------------------------


class TestFacadeExecutor:
    def test_executor_metadata_recorded_in_extras(self):
        graph = gnp_random_graph(80, 0.1, seed=7)
        report = solve(
            "fractional_matching",
            graph,
            backend="mpc",
            seed=5,
            executor="parallel",
            workers=2,
        )
        info = report.extras["executor"]
        assert info["kind"] == "parallel"
        assert info["workers"] == 2
        assert info["distributed"] is True
        phases = {w["phase"] for w in info["phase_walls"]}
        assert "direct-simulation" in phases

    def test_local_executor_metadata(self):
        graph = gnp_random_graph(80, 0.1, seed=7)
        report = solve(
            "fractional_matching", graph, backend="mpc", seed=5, executor="local"
        )
        info = report.extras["executor"]
        assert info["kind"] == "local" and info["distributed"] is False

    def test_non_mpc_backend_rejects_executor(self):
        graph = gnp_random_graph(40, 0.1, seed=7)
        with pytest.raises(ValueError, match="does not support an executor"):
            solve("mis", graph, backend="greedy", executor="local")

    def test_workers_without_executor_rejected(self):
        graph = gnp_random_graph(40, 0.1, seed=7)
        with pytest.raises(ValueError, match="requires an executor"):
            solve("mis", graph, backend="mpc", workers=2)

    def test_unknown_executor_rejected(self):
        graph = gnp_random_graph(40, 0.1, seed=7)
        with pytest.raises(ValueError, match="unknown executor"):
            solve("mis", graph, backend="mpc", executor="cloud")

    def test_mpi_executor_not_implemented(self):
        graph = gnp_random_graph(40, 0.1, seed=7)
        with pytest.raises(NotImplementedError):
            solve("mis", graph, backend="mpc", executor="mpi")

    def test_executor_instance_reused_across_solves(self):
        graph = gnp_random_graph(80, 0.1, seed=7)
        with DistExecutor(LocalTransport(2), distributed=True) as executor:
            first = solve(
                "fractional_matching",
                graph,
                backend="mpc",
                seed=5,
                executor=executor,
            )
            second = solve(
                "fractional_matching",
                graph,
                backend="mpc",
                seed=5,
                executor=executor,
            )
        assert report_snapshot(first) == report_snapshot(second)

    def test_cli_executor_flag(self, capsys):
        from repro.api.__main__ import main as cli_main

        rc = cli_main(
            [
                "solve",
                "--task",
                "fractional_matching",
                "--backend",
                "mpc",
                "--graph",
                "gnp:n=80,p=0.1",
                "--seed",
                "7",
                "--executor",
                "parallel",
                "--workers",
                "2",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["extras"]["executor"]["workers"] == 2


# ---------------------------------------------------------------------------
# kernels registry
# ---------------------------------------------------------------------------


class TestKernelRegistry:
    def test_expected_kernels_registered(self):
        names = kernel_names()
        for required in (
            "debug.echo",
            "debug.fail",
            "debug.crash",
            "matching.machines",
            "matching.direct_init",
            "matching.direct_step",
            "mis.prefix_greedy",
            "weighted.filtering",
        ):
            assert required in names

    def test_unknown_kernel_raises_with_listing(self):
        with pytest.raises(KeyError, match="registered"):
            get_kernel("no.such.kernel")
