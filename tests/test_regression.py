"""Seeded regression pins.

These tests pin exact outputs for fixed seeds.  They exist to catch
*unintentional* behavior changes — a refactor that silently perturbs the
randomness consumption order, the permutation handling, or the weight
arithmetic will trip them even if every invariant still holds.  If a
change is intentional (e.g. an algorithmic fix), update the pins in the
same commit and say why.

The library's randomness is built on ``random.Random`` and SHA-256-keyed
streams, both stable across Python versions, so these pins are portable.
"""

import pytest

from repro.baselines.luby import luby_mis
from repro.core.central import central_fractional_matching
from repro.core.integral import mpc_maximum_matching
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.graph.generators import gnp_random_graph


@pytest.fixture(scope="module")
def pinned_graph():
    return gnp_random_graph(100, 0.1, seed=123)


class TestPinnedOutputs:
    def test_generator_pin(self, pinned_graph):
        assert pinned_graph.num_edges == 512

    def test_mis_pin(self, pinned_graph):
        result = mis_mpc(pinned_graph, seed=123)
        assert len(result.mis) == 21
        assert result.rounds == 9
        assert sorted(result.mis)[:8] == [1, 6, 11, 15, 17, 20, 25, 26]

    def test_fractional_matching_pin(self, pinned_graph):
        result = mpc_fractional_matching(pinned_graph, seed=123)
        assert result.weight == pytest.approx(32.981127, abs=1e-5)
        assert len(result.vertex_cover) == 81
        assert result.rounds == 30

    def test_integral_matching_pin(self, pinned_graph):
        result = mpc_maximum_matching(pinned_graph, seed=123)
        assert len(result.matching) == 47
        assert sorted(result.matching)[:4] == [(0, 82), (1, 24), (2, 48), (3, 83)]

    def test_central_pin(self, pinned_graph):
        result = central_fractional_matching(pinned_graph, epsilon=0.1, seed=123)
        assert result.weight == pytest.approx(39.523292, abs=1e-5)
        assert result.iterations == 34

    def test_luby_pin(self, pinned_graph):
        result = luby_mis(pinned_graph, seed=123)
        assert len(result.mis) == 22
        assert result.rounds == 3
