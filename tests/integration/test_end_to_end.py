"""Integration tests: full pipelines across modules, as a user would run them."""

import pytest

from repro import (
    MatchingConfig,
    barabasi_albert,
    congested_clique_mis,
    gnp_random_graph,
    mis_mpc,
    mpc_fractional_matching,
    mpc_maximum_matching,
    mpc_vertex_cover,
    mpc_weighted_matching,
    one_plus_eps_matching,
    random_bipartite_graph,
)
from repro.baselines.blossom import maximum_matching
from repro.baselines.hopcroft_karp import hopcroft_karp_matching
from repro.graph.generators import random_weighted_graph
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_vertex_cover,
)


class TestFullPipelines:
    def test_mis_both_models_agree_on_validity(self):
        """MPC and CONGESTED-CLIQUE MIS under the same seed: both maximal."""
        g = barabasi_albert(300, 4, seed=1)
        mpc_result = mis_mpc(g, seed=1)
        cc_result = congested_clique_mis(g, seed=1)
        assert is_maximal_independent_set(g, mpc_result.mis)
        assert is_maximal_independent_set(g, cc_result.mis)

    def test_matching_and_cover_duality(self):
        """Weak LP duality observed end to end: the fractional matching
        weight never exceeds the integral cover size."""
        g = gnp_random_graph(300, 0.04, seed=2)
        fractional = mpc_fractional_matching(g, seed=2)
        assert fractional.weight <= len(fractional.vertex_cover) + 1e-6

    def test_matching_vs_cover_sandwich(self):
        """|M| <= |VC| <= 2+eps approx, full public API path."""
        g = gnp_random_graph(250, 0.05, seed=3)
        config = MatchingConfig(epsilon=0.1)
        matching = mpc_maximum_matching(g, config=config, seed=3)
        cover = mpc_vertex_cover(g, config=config, seed=3)
        assert is_matching(g, matching.matching)
        assert is_vertex_cover(g, cover.cover)
        assert len(matching.matching) <= cover.size

    def test_social_network_workload(self):
        """Power-law graph through MIS + matching + cover, all invariants."""
        g = barabasi_albert(400, 3, seed=4)
        mis = mis_mpc(g, seed=4)
        matching = mpc_maximum_matching(g, seed=4)
        cover = mpc_vertex_cover(g, seed=4)
        assert is_maximal_independent_set(g, mis.mis)
        assert is_matching(g, matching.matching)
        assert is_vertex_cover(g, cover.cover)
        optimum = len(maximum_matching(g))
        assert len(matching.matching) >= optimum / 2.2

    def test_bipartite_pipeline_vs_exact(self):
        g = random_bipartite_graph(100, 100, 0.04, seed=5)
        optimum = len(hopcroft_karp_matching(g))
        approx = mpc_maximum_matching(g, seed=5)
        improved = one_plus_eps_matching(g, epsilon=0.34, seed=5)
        assert len(approx.matching) >= optimum / 2.2
        assert len(improved.matching) >= optimum / 1.35
        assert len(improved.matching) >= len(approx.matching) * 0.99

    def test_weighted_pipeline(self):
        wg = random_weighted_graph(150, 0.05, distribution="zipf", seed=6)
        result = mpc_weighted_matching(wg, epsilon=0.1, seed=6)
        assert is_matching(wg.structure, result.matching)
        # Weight is at least the heaviest edge over 2 (greedy-by-class
        # always matches something in the top class).
        assert result.weight >= wg.max_weight() / 2

    def test_round_counts_stay_in_loglog_budget(self):
        """The paper's algorithm must fit a doubly-logarithmic round budget
        across an 8x size sweep.  (An absolute head-to-head vs Luby is not
        meaningful at simulable sizes — Luby's constant is tiny and the
        crossover lies beyond any single-machine simulation; EXPERIMENTS.md
        records both series honestly.)"""
        import math

        for n in (256, 2048):
            g = gnp_random_graph(n, 0.1, seed=7)
            paper = mis_mpc(g, seed=7)
            budget = 6 * math.log2(math.log2(n * g.max_degree())) + 4
            assert paper.rounds <= budget

    def test_determinism_across_public_api(self):
        g = gnp_random_graph(150, 0.07, seed=8)
        assert mis_mpc(g, seed=0).mis == mis_mpc(g, seed=0).mis
        assert (
            mpc_maximum_matching(g, seed=0).matching
            == mpc_maximum_matching(g, seed=0).matching
        )
        wg = random_weighted_graph(60, 0.1, seed=8)
        assert (
            mpc_weighted_matching(wg, seed=0).weight
            == mpc_weighted_matching(wg, seed=0).weight
        )
