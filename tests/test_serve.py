"""Unit tests for ``repro.serve``: coalescing, sessions, snapshots, reports.

The service/protocol layer is covered by ``tests/test_serve_service.py``
and the crash conformance check (``python -m repro.serve --check``);
these tests pin the pieces underneath: the batch-coalescing algebra, the
:class:`TenantSession` queue/backpressure/dedup behavior, atomic
snapshot files, exact restore, and the ``ServeReport`` schema contract.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.generators import gnp_random_graph
from repro.serve import (
    ServeReport,
    TenantSession,
    list_snapshots,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.serve.session import COALESCED, DUPLICATE, QUEUED, SHED
from repro.stream.dynamic import DynamicGraph
from repro.stream.maintain import MAINTAINERS
from repro.stream.updates import EdgeBatch, coalesce_batches, make_scenario


def _batch(insertions=(), deletions=(), new_vertices=0):
    return EdgeBatch.make(
        insertions=np.array(list(insertions), dtype=np.int64).reshape(-1, 2),
        deletions=np.array(list(deletions), dtype=np.int64).reshape(-1, 2),
        new_vertices=new_vertices,
    )


# ---------------------------------------------------------------------------
# coalesce_batches
# ---------------------------------------------------------------------------


class TestCoalesceBatches:
    def test_insert_then_delete_cancels(self):
        merged = coalesce_batches(
            [_batch(insertions=[(0, 1)]), _batch(deletions=[(0, 1)])]
        )
        assert merged.insertions.shape == (0, 2)
        assert merged.deletions.shape == (1, 2)

    def test_delete_then_reinsert_is_insert(self):
        merged = coalesce_batches(
            [_batch(deletions=[(0, 1)]), _batch(insertions=[(0, 1)])]
        )
        assert merged.insertions.shape == (1, 2)
        assert merged.deletions.shape == (0, 2)

    def test_vertex_growth_sums(self):
        merged = coalesce_batches(
            [_batch(new_vertices=2), _batch(new_vertices=3)]
        )
        assert merged.new_vertices == 5

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            coalesce_batches([])

    def test_equivalent_to_sequential_application(self):
        """The merged batch, applied once, yields the same compacted CSR
        as applying the sequence batch by batch."""
        graph, batches = make_scenario(
            "churn", n=48, epochs=6, churn_fraction=0.08, seed=9
        )
        sequential = DynamicGraph(graph)
        for batch in batches:
            sequential.add_vertices(batch.new_vertices)
            sequential.apply_edges(batch.insertions, batch.deletions)
        merged = coalesce_batches(batches)
        merged_graph = DynamicGraph(graph)
        merged_graph.add_vertices(merged.new_vertices)
        merged_graph.apply_edges(merged.insertions, merged.deletions)
        a, b = sequential.compact(), merged_graph.compact()
        assert a.num_vertices == b.num_vertices
        assert (a.edge_array() == b.edge_array()).all()

    def test_equivalence_with_growth(self):
        graph, batches = make_scenario(
            "growth", n=32, epochs=5, churn_fraction=0.1, seed=4
        )
        sequential = DynamicGraph(graph)
        for batch in batches:
            sequential.add_vertices(batch.new_vertices)
            sequential.apply_edges(batch.insertions, batch.deletions)
        merged = coalesce_batches(batches)
        merged_graph = DynamicGraph(graph)
        merged_graph.add_vertices(merged.new_vertices)
        merged_graph.apply_edges(merged.insertions, merged.deletions)
        assert (
            sequential.compact().edge_array()
            == merged_graph.compact().edge_array()
        ).all()


# ---------------------------------------------------------------------------
# TenantSession: queueing, backpressure, dedup
# ---------------------------------------------------------------------------


@pytest.fixture
def small_graph():
    return gnp_random_graph(32, 0.2, seed=6)


class TestTenantSession:
    def test_name_validation(self, small_graph):
        for bad in ("", "../evil", "a/b", "a b", ".hidden", "x" * 65, 7):
            with pytest.raises(ValueError):
                TenantSession(bad, "mis", small_graph)
        TenantSession("ok-name.v2_3", "mis", small_graph)  # no raise

    def test_process_requires_initialize(self, small_graph):
        session = TenantSession("t", "mis", small_graph)
        with pytest.raises(RuntimeError):
            session.process(_batch(insertions=[(0, 1)]))

    def test_offer_coalesces_at_max_queue(self, small_graph):
        session = TenantSession("t", "mis", small_graph, max_queue=3)
        session.initialize()
        for seq in range(1, 4):
            outcome, _ = session.offer(_batch(insertions=[(0, seq)]), seq)
            assert outcome == QUEUED
        outcome, depth = session.offer(_batch(insertions=[(0, 9)]), 4)
        assert outcome == COALESCED
        assert depth == 2  # merged backlog + the new batch
        assert session.counters["coalesced"] == 1
        # Coalescing loses no edits: draining applies all four inserts.
        session.drain()
        for v in (1, 2, 3, 9):
            assert session.maintainer.graph.has_edge(0, v)

    def test_offer_sheds_over_edit_budget(self, small_graph):
        session = TenantSession(
            "t", "mis", small_graph, max_queue=2, max_pending_edits=3
        )
        session.initialize()
        session.offer(_batch(insertions=[(0, 1), (0, 2)]), 1)
        outcome, _ = session.offer(_batch(insertions=[(0, 3), (0, 4)]), 2)
        assert outcome == SHED
        assert session.counters["shed"] == 1
        # The shed batch's seq was not consumed: the retry is accepted
        # once the queue drains.
        session.drain()
        outcome, _ = session.offer(_batch(insertions=[(0, 3), (0, 4)]), 2)
        assert outcome == QUEUED

    def test_duplicate_seq_acknowledged_not_queued(self, small_graph):
        session = TenantSession("t", "mis", small_graph)
        session.initialize()
        session.offer(_batch(insertions=[(0, 1)]), 5)
        outcome, depth = session.offer(_batch(insertions=[(0, 2)]), 5)
        assert outcome == DUPLICATE and depth == 1
        outcome, _ = session.offer(_batch(insertions=[(0, 2)]), 4)
        assert outcome == DUPLICATE
        assert session.counters["duplicates"] == 2

    def test_process_skips_already_processed_seq(self, small_graph):
        session = TenantSession("t", "mis", small_graph)
        session.initialize()
        assert session.process(_batch(insertions=[(0, 1)]), 1) is not None
        assert session.process(_batch(insertions=[(0, 2)]), 1) is None
        assert session.epochs_processed == 1

    def test_unsequenced_batches_always_process(self, small_graph):
        session = TenantSession("t", "mis", small_graph)
        session.initialize()
        assert session.process(_batch(insertions=[(0, 1)])) is not None
        assert session.process(_batch(insertions=[(0, 2)])) is not None
        assert session.processed_seq is None

    def test_quality_per_task(self, small_graph):
        for task in MAINTAINERS:
            session = TenantSession("t", task, small_graph, seed=0)
            session.initialize()
            assert session.quality() >= 0.0

    def test_certificate_of_maintained_solution(self, small_graph):
        session = TenantSession("t", "matching", small_graph, seed=0)
        session.initialize()
        session.process(_batch(insertions=[(0, 1)]), 1)
        certificate = session.certificate()
        assert certificate["ok"] is True


# ---------------------------------------------------------------------------
# snapshots: atomicity + exact restore
# ---------------------------------------------------------------------------


class TestSnapshotFiles:
    def test_write_read_round_trip(self, tmp_path):
        path = snapshot_path(tmp_path, "t1")
        payload = {"schema": 1, "tenant": "t1", "data": [1.5, 2.25]}
        write_snapshot(path, payload)
        assert read_snapshot(path) == payload

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        write_snapshot(snapshot_path(tmp_path, "t1"), {"schema": 1})
        assert sorted(os.listdir(tmp_path)) == ["t1.snapshot.json"]

    def test_failed_write_keeps_previous_snapshot(self, tmp_path):
        path = snapshot_path(tmp_path, "t1")
        write_snapshot(path, {"schema": 1, "generation": 1})
        with pytest.raises(TypeError):
            write_snapshot(path, {"schema": 1, "bad": {1, 2}})  # unserializable
        assert read_snapshot(path)["generation"] == 1
        assert sorted(os.listdir(tmp_path)) == ["t1.snapshot.json"]

    def test_unknown_schema_rejected(self, tmp_path):
        path = snapshot_path(tmp_path, "t1")
        with pytest.raises(ValueError):
            write_snapshot(path, {"schema": 99})
        write_snapshot(path, {"schema": 1})
        raw = json.loads(open(path).read())
        raw["schema"] = 99
        with open(path, "w") as stream:
            json.dump(raw, stream)
        with pytest.raises(ValueError):
            read_snapshot(path)

    def test_list_snapshots(self, tmp_path):
        assert list_snapshots(tmp_path / "absent") == []
        write_snapshot(snapshot_path(tmp_path, "bob"), {"schema": 1})
        write_snapshot(snapshot_path(tmp_path, "alice"), {"schema": 1})
        (tmp_path / "notes.txt").write_text("not a snapshot")
        assert list_snapshots(tmp_path) == ["alice", "bob"]


@pytest.mark.parametrize("task", sorted(MAINTAINERS))
def test_session_snapshot_restore_round_trip(task, tmp_path):
    """Snapshot -> JSON file -> restore reproduces solution, cursor,
    records, and counters for every maintainer task."""
    graph, batches = make_scenario(
        "churn", n=48, epochs=5, churn_fraction=0.06, seed=13
    )
    session = TenantSession("t", task, graph, seed=3, verify=True)
    session.initialize()
    for seq, batch in enumerate(batches, start=1):
        session.process(batch, seq)
    path = snapshot_path(tmp_path, "t")
    write_snapshot(path, session.snapshot_payload())
    restored = TenantSession.restore(read_snapshot(path))

    assert restored.maintainer.solution() == session.maintainer.solution()
    assert restored.processed_seq == session.processed_seq
    assert [r.to_dict() for r in restored.records] == [
        r.to_dict() for r in session.records
    ]
    assert restored.counters["restores"] == 1
    assert restored.quality() == session.quality()
    # Restored graph is array-identical to the live compacted one.
    assert (
        restored.maintainer.graph.compact().edge_array()
        == session.maintainer.graph.compact().edge_array()
    ).all()
    # And it keeps serving: replay is deduped, new batches process.
    assert restored.process(batches[-1], len(batches)) is None
    extra = _batch(insertions=[(0, 1)], deletions=[(2, 3)])
    assert restored.process(extra, len(batches) + 1) is not None


def test_restored_session_continues_identically(tmp_path):
    """The crash-safety core, in-process: snapshot mid-stream, restore,
    finish — final solution and the post-snapshot certificates match the
    uninterrupted run exactly."""
    graph, batches = make_scenario(
        "churn", n=48, epochs=6, churn_fraction=0.06, seed=21
    )
    edges = graph.edge_list()
    cut = 3

    uninterrupted = TenantSession(
        "t", "mis", Graph(graph.num_vertices, edges), seed=5, verify=True
    )
    uninterrupted.initialize()
    for seq, batch in enumerate(batches, start=1):
        uninterrupted.process(batch, seq)

    crashed = TenantSession(
        "t", "mis", Graph(graph.num_vertices, edges), seed=5, verify=True
    )
    crashed.initialize()
    for seq, batch in enumerate(batches[:cut], start=1):
        crashed.process(batch, seq)
    payload = json.loads(json.dumps(crashed.snapshot_payload()))
    restored = TenantSession.restore(payload)
    for seq, batch in enumerate(batches, start=1):  # full replay
        restored.process(batch, seq)

    assert restored.maintainer.solution() == uninterrupted.maintainer.solution()
    assert [r.verification for r in restored.records] == [
        r.verification for r in uninterrupted.records
    ]


# ---------------------------------------------------------------------------
# ServeReport
# ---------------------------------------------------------------------------


class TestServeReport:
    def _report(self, small_graph=None):
        graph = small_graph or gnp_random_graph(24, 0.2, seed=1)
        session = TenantSession("t1", "mis", graph, seed=0, verify=True)
        session.initialize()
        session.process(_batch(insertions=[(0, 1)]), 1)
        return ServeReport(tenants=[session.report()], config={"port": 0})

    def test_json_round_trip(self):
        report = self._report()
        clone = ServeReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        assert clone.ok is report.ok is True

    def test_tenant_lookup(self):
        report = self._report()
        assert report.tenant("t1").task == "mis"
        with pytest.raises(KeyError):
            report.tenant("absent")

    def test_unknown_schema_rejected(self):
        report = self._report()
        payload = report.to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError):
            ServeReport.from_dict(payload)
        with pytest.raises(ValueError):
            ServeReport(tenants=[], schema=99)

    def test_summary_row_counters(self):
        report = self._report()
        row = report.tenants[0].summary_row()
        assert row["epochs"] == 1 and row["ok"] is True
        for key in ("coalesced", "shed", "snapshots", "restores"):
            assert key in row
