"""Unit tests for the MPC MIS algorithm (Theorem 1.1)."""

import math

import pytest

from repro.core.config import MISConfig
from repro.core.mis_mpc import mis_mpc, rank_schedule
from repro.graph.generators import (
    complete_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_maximal_independent_set


class TestRankSchedule:
    def test_sparse_graph_has_no_prefix_phases(self):
        config = MISConfig()
        assert rank_schedule(1000, max_degree=4, config=config) == []

    def test_schedule_increasing_and_ends_at_floor(self):
        config = MISConfig()
        n, delta = 100_000, 1000
        cutoffs = rank_schedule(n, delta, config)
        assert cutoffs == sorted(cutoffs)
        assert cutoffs[-1] == max(1, n // config.sparse_degree_threshold(n))

    def test_schedule_length_is_loglog(self):
        config = MISConfig()
        cutoffs = rank_schedule(10**6, 10**5, config)
        # O(log log Δ): far fewer phases than log Δ.
        assert len(cutoffs) <= 4 * math.log2(math.log2(10**5))

    def test_empty_graph(self):
        assert rank_schedule(0, 0, MISConfig()) == []


class TestMISMPC:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_maximal_independent_on_gnp(self, seed):
        g = gnp_random_graph(300, 0.05, seed=seed)
        result = mis_mpc(g, seed=seed)
        assert is_maximal_independent_set(g, result.mis)

    def test_dense_graph_exercises_prefix_phases(self):
        g = gnp_random_graph(500, 0.5, seed=3)
        result = mis_mpc(g, seed=3)
        assert result.prefix_phases >= 1
        assert is_maximal_independent_set(g, result.mis)

    def test_complete_graph(self):
        g = complete_graph(60)
        result = mis_mpc(g, seed=4)
        assert len(result.mis) == 1

    def test_star(self):
        g = star_graph(40)
        result = mis_mpc(g, seed=5)
        assert is_maximal_independent_set(g, result.mis)

    def test_path(self):
        g = path_graph(51)
        result = mis_mpc(g, seed=6)
        assert is_maximal_independent_set(g, result.mis)

    def test_empty_and_edgeless(self):
        assert mis_mpc(Graph(0)).mis == set()
        result = mis_mpc(Graph(8), seed=1)
        assert result.mis == set(range(8))

    def test_determinism(self):
        g = gnp_random_graph(150, 0.1, seed=7)
        a = mis_mpc(g, seed=11)
        b = mis_mpc(g, seed=11)
        assert a.mis == b.mis
        assert a.rounds == b.rounds

    def test_shipped_edges_fit_memory(self):
        config = MISConfig(memory_factor=8)
        g = gnp_random_graph(400, 0.4, seed=8)
        result = mis_mpc(g, seed=8, config=config)
        assert result.max_shipped_edges * 2 <= config.memory_factor * 400

    def test_rounds_reported_positive(self):
        g = gnp_random_graph(100, 0.1, seed=9)
        assert mis_mpc(g, seed=9).rounds > 0

    def test_rounds_grow_sublogarithmically(self):
        """Doubling n repeatedly must grow rounds far slower than log n."""
        config = MISConfig()
        rounds = []
        for n in (256, 1024, 4096):
            g = gnp_random_graph(n, min(1.0, 32.0 / n), seed=10)
            rounds.append(mis_mpc(g, seed=10, config=config).rounds)
        assert rounds[-1] - rounds[0] <= 4
