"""Unit tests for WeightedGraph."""

import pytest

from repro.graph.weighted import WeightedGraph


class TestWeightedGraph:
    def test_construction_and_weights(self):
        wg = WeightedGraph(4, [(0, 1, 2.5), (1, 2, 1.0)])
        assert wg.num_vertices == 4
        assert wg.num_edges == 2
        assert wg.weight(1, 0) == 2.5  # order-insensitive

    def test_nonpositive_weight_rejected(self):
        wg = WeightedGraph(3)
        with pytest.raises(ValueError):
            wg.add_edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            wg.add_edge(0, 1, -1.0)

    def test_min_max_weight(self):
        wg = WeightedGraph(4, [(0, 1, 3.0), (1, 2, 7.0)])
        assert wg.max_weight() == 7.0
        assert wg.min_weight() == 3.0
        assert WeightedGraph(2).max_weight() == 0.0

    def test_matching_weight(self):
        wg = WeightedGraph(4, [(0, 1, 3.0), (2, 3, 4.0), (1, 2, 10.0)])
        assert wg.matching_weight([(0, 1), (2, 3)]) == pytest.approx(7.0)

    def test_structure_shared(self):
        wg = WeightedGraph(3, [(0, 1, 1.0)])
        assert wg.structure.has_edge(0, 1)

    def test_threshold_subgraph(self):
        wg = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 5.0), (2, 3, 10.0)])
        heavy = wg.subgraph_with_weight_at_least(5.0)
        assert heavy.num_edges == 2
        assert heavy.min_weight() == 5.0

    def test_edges_iteration(self):
        wg = WeightedGraph(3, [(2, 0, 1.5)])
        assert list(wg.edges()) == [(0, 2, 1.5)]
