"""Setup shim for legacy editable installs (offline environments)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Improved Massively Parallel Computation Algorithms "
        "for MIS, Matching, and Vertex Cover' (Ghaffari et al., PODC 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={
        "console_scripts": [
            "repro = repro.api.__main__:main",
        ]
    },
)
