"""Diff two ``BENCH_*.json`` files: per-cell speedup table + regression gate.

Compares the timing cells shared by two perf-harness runs (any of the
``benchmarks/perf`` suites — e2e, kernels, stream, dist) and prints a
per-``(task, backend, family, n)`` (or per-kernel) speedup table,
``baseline / current``.  With ``--fail-over F`` it exits 1 when any shared
cell regressed by more than a factor of ``F``.  With ``--fail-rss-over B``
it additionally exits 1 when any current-run cell carrying
``peak_rss_bytes`` (the ``ooc`` suite) exceeds ``B`` bytes — the
bounded-residency claim of OUT_OF_CORE.md, enforced as an absolute
ceiling because RSS does not drift with machine speed.  With
``--fail-comm-over W`` the same applies to cells carrying
``total_comm_words`` (the ``govern`` suite): governed runs must keep
their shipped volume under an absolute word ceiling.

Runs recorded on machines with different ``environment.cpu_count`` are
refused outright (exit 1) — the parallel suites scale with cores, so
such a diff gates on hardware, not code.  ``--allow-env-mismatch``
overrides for deliberate cross-machine comparisons.

Because the committed baselines and a CI runner are different machines,
absolute seconds drift; ``--normalize KEY`` divides every cell of each run
by that run's ``KEY`` cell before gating, so uniform machine speed cancels
(pick a cell whose implementation never changes run-to-run, e.g. a
``greedy`` backend row).  The printed speedup table always shows the raw
ratios.

Usage::

    python tools/bench_diff.py OLD.json NEW.json
    python tools/bench_diff.py benchmarks/perf/BENCH_e2e.json /tmp/fresh.json \
        --fail-over 2.0 --normalize mis/greedy/random/5000
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

# Key fields and the timing field, per suite (the harness stamps "suite").
SUITE_LAYOUT: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "e2e": (("task", "backend", "family", "n"), "seconds"),
    "kernels": (("kernel", "family", "n"), "csr_s"),
    "stream": (("task", "family", "n"), "repair_s"),
    # mode is "local" or "parallel-wK" (K = worker count); see
    # tools/run_scaling.py.
    "dist": (("task", "family", "n", "mode"), "seconds"),
    # op is "update" or "query"; p99 latency under concurrent tenants —
    # see benchmarks/perf/bench_serve.py.
    "serve": (("task", "family", "n", "op"), "p99_ms"),
    # out-of-core solve rung; cells also carry "peak_rss_bytes", gated
    # separately by --fail-rss-over — see benchmarks/perf/bench_ooc.py.
    "ooc": (("task", "family", "n"), "seconds"),
    # governed vs ungoverned adversarial cells; mode is "governed" or
    # "greedy"; cells also carry "total_comm_words", gated separately by
    # --fail-comm-over — see benchmarks/perf/bench_govern.py.
    "govern": (("task", "family", "n", "mode"), "seconds"),
}


def _unit(time_field: str) -> str:
    return "ms" if time_field.endswith("_ms") else "s"


def load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def layout_for(payload: Dict[str, Any]) -> Tuple[Tuple[str, ...], str]:
    suite = payload.get("suite")
    if suite not in SUITE_LAYOUT:
        raise SystemExit(
            f"unknown suite {suite!r}; expected one of {sorted(SUITE_LAYOUT)}"
        )
    return SUITE_LAYOUT[suite]


def cells(payload: Dict[str, Any]) -> Dict[str, float]:
    """``key -> seconds`` for every result row of one run."""
    fields, time_field = layout_for(payload)
    out: Dict[str, float] = {}
    for entry in payload["results"]:
        key = "/".join(str(entry[field]) for field in fields)
        out[key] = float(entry[time_field])
    return out


def diff(
    baseline: Dict[str, float],
    current: Dict[str, float],
    fail_over: Optional[float],
    normalize: Optional[str],
    min_seconds: float = 0.0,
    require_cells: Tuple[str, ...] = (),
    unit: str = "s",
    environments: Tuple[Dict[str, Any], Dict[str, Any]] = ({}, {}),
) -> int:
    # A required cell missing from EITHER run is a hard failure: a CI
    # smoke rung that silently stopped producing its gated cell would
    # otherwise pass forever on an empty intersection.
    absent = [
        key
        for key in require_cells
        if key not in baseline or key not in current
    ]
    if absent:
        print("REQUIRED CELLS MISSING:")
        for key in absent:
            sides = []
            if key not in baseline:
                sides.append("baseline")
            if key not in current:
                sides.append("current")
            print(f"  {key} (absent from: {', '.join(sides)})")
        return 1
    shared = [key for key in baseline if key in current]
    if not shared:
        print("no shared cells between the two runs")
        return 1
    scale_old = scale_new = 1.0
    if normalize is not None:
        if normalize not in baseline or normalize not in current:
            raise SystemExit(f"--normalize cell {normalize!r} missing from a run")
        scale_old = baseline[normalize]
        scale_new = current[normalize]
    width = max(len(key) for key in shared)
    # Machine provenance up front: a "regression" whose two columns came
    # from hosts with different core counts is often not a regression
    # (and a "speedup" may be one machine being faster).
    env_old, env_new = environments
    print(
        f"environment.cpu_count: baseline={env_old.get('cpu_count', '?')} "
        f"current={env_new.get('cpu_count', '?')}"
    )
    print(f"{'cell':<{width}}  {'baseline':>10}  {'current':>10}  {'speedup':>8}")
    failures: List[str] = []
    for key in shared:
        old = baseline[key]
        new = current[key]
        speedup = old / new if new > 0 else float("inf")
        print(
            f"{key:<{width}}  {old:>9.3f}{unit}  {new:>9.3f}{unit}  "
            f"x{speedup:>7.2f}"
        )
        if fail_over is not None:
            if old < min_seconds and new < min_seconds:
                continue  # sub-noise-floor cell: too small to gate on
            old_norm = old / scale_old if scale_old > 0 else old
            new_norm = new / scale_new if scale_new > 0 else new
            if new_norm > fail_over * old_norm:
                failures.append(
                    f"{key}: {new:.3f}{unit} is more than {fail_over}x the "
                    f"baseline {old:.3f}{unit}"
                    + (" (after normalization)" if normalize else "")
                )
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"({len(missing)} baseline cells absent from the current run)")
    if failures:
        print(f"\nPERF REGRESSION (> {fail_over}x vs baseline):")
        for line in failures:
            print("  " + line)
        return 1
    if fail_over is not None:
        print(f"\nperf check OK: {len(shared)} cells within {fail_over}x of baseline")
    return 0


def env_gate(
    env_old: Dict[str, Any], env_new: Dict[str, Any], allow_mismatch: bool
) -> int:
    """Refuse to compare runs recorded on machines with different core counts.

    A timing "regression" whose two columns came from hosts with
    different parallelism is not a measurement — the parallel suites
    (dist, serve) scale with cores, so the diff would gate on hardware,
    not code.  ``--allow-env-mismatch`` overrides for deliberate
    cross-machine comparisons (the table is still printed either way).
    Runs that never recorded ``cpu_count`` are not failed: absence is a
    legacy-baseline artifact, not evidence of a mismatch.
    """
    old_cpus = env_old.get("cpu_count")
    new_cpus = env_new.get("cpu_count")
    if old_cpus is None or new_cpus is None or old_cpus == new_cpus:
        return 0
    message = (
        f"ENVIRONMENT MISMATCH: baseline cpu_count={old_cpus} vs "
        f"current cpu_count={new_cpus}"
    )
    if allow_mismatch:
        print(f"{message} (continuing: --allow-env-mismatch)")
        return 0
    print(f"{message}; timings are not comparable across different "
          "machines — rerun on matching hardware or pass "
          "--allow-env-mismatch")
    return 1


def rss_gate(payload: Dict[str, Any], fail_rss_over: int) -> int:
    """Gate the current run's ``peak_rss_bytes`` cells against a ceiling.

    Absolute bytes (not a baseline ratio): RSS is a property of the
    algorithm + input size, not of machine speed, so a fixed ceiling
    transfers between hosts in a way wall-clock never does.  A run with
    *no* RSS-carrying cells fails loudly — a gate that stopped seeing
    its measurements must not pass vacuously.
    """
    fields, _ = layout_for(payload)
    failures: List[str] = []
    seen = 0
    for entry in payload["results"]:
        rss = entry.get("peak_rss_bytes")
        if rss is None:
            continue
        seen += 1
        key = "/".join(str(entry[field]) for field in fields)
        rss = int(rss)
        print(
            f"rss {key}: {rss / 2**20:8.1f} MiB "
            f"(limit {fail_rss_over / 2**20:.1f} MiB)"
        )
        if rss > fail_rss_over:
            failures.append(
                f"{key}: peak_rss {rss} bytes exceeds --fail-rss-over "
                f"{fail_rss_over}"
            )
    if seen == 0:
        print("RSS GATE: no cell in the current run carries peak_rss_bytes")
        return 1
    if failures:
        print(f"\nRSS REGRESSION (> {fail_rss_over} bytes):")
        for line in failures:
            print("  " + line)
        return 1
    print(f"rss check OK: {seen} cells within {fail_rss_over} bytes")
    return 0


def comm_gate(payload: Dict[str, Any], fail_comm_over: int) -> int:
    """Gate the current run's ``total_comm_words`` cells against a ceiling.

    Mirrors :func:`rss_gate`: communication volume is a property of the
    algorithm + input, not machine speed, so an absolute word ceiling
    transfers between hosts.  Guards the governance suite's claim that
    the intervention ladder bounds shipped volume; a run with no
    comm-carrying cells fails loudly rather than passing vacuously.
    """
    fields, _ = layout_for(payload)
    failures: List[str] = []
    seen = 0
    for entry in payload["results"]:
        comm = entry.get("total_comm_words")
        if comm is None:
            continue
        seen += 1
        key = "/".join(str(entry[field]) for field in fields)
        comm = int(comm)
        print(
            f"comm {key}: {comm:>12} words (limit {fail_comm_over} words)"
        )
        if comm > fail_comm_over:
            failures.append(
                f"{key}: total_comm_words {comm} exceeds --fail-comm-over "
                f"{fail_comm_over}"
            )
    if seen == 0:
        print("COMM GATE: no cell in the current run carries total_comm_words")
        return 1
    if failures:
        print(f"\nCOMM REGRESSION (> {fail_comm_over} words):")
        for line in failures:
            print("  " + line)
        return 1
    print(f"comm check OK: {seen} cells within {fail_comm_over} words")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="earlier BENCH_*.json (e.g. committed)")
    parser.add_argument("current", help="fresh BENCH_*.json to compare")
    parser.add_argument(
        "--fail-over",
        type=float,
        default=None,
        metavar="FACTOR",
        help="exit 1 when any shared cell regressed by more than FACTOR",
    )
    parser.add_argument(
        "--normalize",
        default=None,
        metavar="CELL",
        help="divide each run by its own CELL timing before gating "
        "(cancels uniform machine-speed differences)",
    )
    parser.add_argument(
        "--require-cell",
        action="append",
        default=[],
        metavar="CELL",
        dest="require_cells",
        help="fail (exit 1) unless CELL is present in both runs; "
        "repeatable — use in CI so a silently missing benchmark cell "
        "cannot pass the gate",
    )
    parser.add_argument(
        "--fail-rss-over",
        type=int,
        default=None,
        metavar="BYTES",
        help="exit 1 when any current-run cell carrying peak_rss_bytes "
        "exceeds BYTES (absolute ceiling — RSS does not scale with "
        "machine speed the way seconds do)",
    )
    parser.add_argument(
        "--fail-comm-over",
        type=int,
        default=None,
        metavar="WORDS",
        help="exit 1 when any current-run cell carrying total_comm_words "
        "exceeds WORDS (absolute ceiling — communication volume does not "
        "scale with machine speed)",
    )
    parser.add_argument(
        "--allow-env-mismatch",
        action="store_true",
        help="proceed even when baseline and current were recorded on "
        "machines with different cpu_count (otherwise a mismatch is a "
        "hard failure)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        metavar="S",
        help="noise floor: cells where both runs are below S are printed "
        "but never gated (default 0.05)",
    )
    args = parser.parse_args(argv)
    baseline = load(args.baseline)
    current = load(args.current)
    if layout_for(baseline) != layout_for(current):
        raise SystemExit("the two files are from different suites")
    _, time_field = layout_for(baseline)
    status = env_gate(
        baseline.get("environment", {}),
        current.get("environment", {}),
        args.allow_env_mismatch,
    )
    status = max(
        status,
        diff(
            cells(baseline),
            cells(current),
            args.fail_over,
            args.normalize,
            args.min_seconds,
            tuple(args.require_cells),
            unit=_unit(time_field),
            environments=(
                baseline.get("environment", {}),
                current.get("environment", {}),
            ),
        ),
    )
    if args.fail_rss_over is not None:
        status = max(status, rss_gate(current, args.fail_rss_over))
    if args.fail_comm_over is not None:
        status = max(status, comm_gate(current, args.fail_comm_over))
    return status


if __name__ == "__main__":
    sys.exit(main())
