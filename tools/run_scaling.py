"""Scaling benchmark for ``repro.dist``: parallel executor vs local.

Times the MPC solvers through the façade with ``executor="local"`` (the
sequential in-process reference) and ``executor="parallel"`` at several
worker counts, on the same deterministic graph ladder the other perf
suites use, and emits ``BENCH_dist.json`` (suite ``"dist"``; cells keyed
``task/family/n/mode`` with mode ``local`` or ``parallel-wK``).

Every timed parallel run is also a parity check: the solution and round
count must match the local run byte-for-byte, so the committed speedup
table doubles as evidence that the distribution is output-preserving.

Interpret results against ``environment.cpu_count`` in the output: on a
single-core host, ``parallel-wK`` for K > 1 only adds scheduling
overhead over ``parallel-w1`` and can never beat it — the multi-worker
cells are still worth committing (they pin the overhead and the parity),
but scaling conclusions require multi-core hardware.  See
DISTRIBUTED.md, "Scaling".

Usage::

    PYTHONPATH=src python tools/run_scaling.py --rung full \
        --out benchmarks/perf/BENCH_dist.json
    PYTHONPATH=src python tools/run_scaling.py --rung small --workers 2 \
        --out /tmp/dist_smoke.json          # the CI smoke invocation
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(_REPO_ROOT, "benchmarks"))

from perf.common import (  # noqa: E402
    environment_stamp,
    ladder_graph,
    time_call,
    write_json,
)

from repro.api import solve  # noqa: E402
from repro.dist import DistExecutor, MultiprocessTransport  # noqa: E402

SOLVE_SEED = 7
KEY_FIELDS = ("task", "family", "n", "mode")

# The grid.  fractional_matching is the subsystem every other MPC solver
# funnels through (matching/vertex_cover/one_plus_eps run it as passes),
# so it carries the ladder; the matching row at 20k is the headline cell —
# ~650 direct-simulation iterations, the workload distribution exists for.
RUNGS: Dict[str, List[Dict[str, Any]]] = {
    "small": [
        {"task": "fractional_matching", "family": "random", "n": 5_000},
    ],
    "full": [
        {"task": "fractional_matching", "family": "random", "n": 5_000},
        {"task": "fractional_matching", "family": "random", "n": 20_000},
        {"task": "fractional_matching", "family": "random", "n": 50_000},
        {"task": "matching", "family": "random", "n": 20_000},
    ],
}


def _repeats(n: int) -> int:
    return 3 if n <= 5_000 else 2


def _snapshot(report) -> Dict[str, Any]:
    """The parity-relevant slice of a run report."""
    data = json.loads(report.to_json())
    data.pop("wall_time_s")
    data.pop("peak_rss_bytes")
    data.get("extras", {}).pop("executor", None)
    return data


def run_cell(
    case: Dict[str, Any], workers_list: List[int]
) -> List[Dict[str, Any]]:
    task, family, n = case["task"], case["family"], case["n"]
    graph = ladder_graph(family, n)
    repeats = _repeats(n)

    def timed(executor) -> float:
        return time_call(
            lambda: solve(
                task, graph, backend="mpc", seed=SOLVE_SEED, executor=executor
            ),
            repeats,
        )

    rows: List[Dict[str, Any]] = []
    local_reference = _snapshot(
        solve(task, graph, backend="mpc", seed=SOLVE_SEED, executor="local")
    )
    local_seconds = timed("local")
    rows.append(
        {
            "task": task,
            "family": family,
            "n": n,
            "mode": "local",
            "workers": 0,
            "seconds": local_seconds,
            "speedup_vs_local": 1.0,
        }
    )
    print(f"{task}/{family}/{n}: local {local_seconds:.3f}s", flush=True)

    for workers in workers_list:
        # One persistent worker pool per mode: the per-cell repeats reuse
        # it, so process startup is amortized exactly as a long-lived
        # deployment would amortize it.
        with DistExecutor(
            MultiprocessTransport(workers), kind="parallel"
        ) as executor:
            parallel = _snapshot(
                solve(
                    task, graph, backend="mpc", seed=SOLVE_SEED, executor=executor
                )
            )
            if parallel != local_reference:
                raise SystemExit(
                    f"PARITY FAILURE: {task}/{family}/{n} with "
                    f"workers={workers} diverged from the local run"
                )
            seconds = timed(executor)
        rows.append(
            {
                "task": task,
                "family": family,
                "n": n,
                "mode": f"parallel-w{workers}",
                "workers": workers,
                "seconds": seconds,
                "speedup_vs_local": local_seconds / seconds if seconds else 0.0,
            }
        )
        print(
            f"{task}/{family}/{n}: parallel-w{workers} {seconds:.3f}s "
            f"(x{local_seconds / seconds:.2f} vs local, parity OK)",
            flush=True,
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rung", choices=sorted(RUNGS), default="small")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts to time (each also parity-checked vs local)",
    )
    parser.add_argument("--out", required=True, help="output BENCH JSON path")
    parser.add_argument(
        "--allow-oversubscribed",
        action="store_true",
        help="proceed even when a worker count exceeds the host's CPUs "
        "(the timings then measure scheduling contention, not scaling)",
    )
    args = parser.parse_args(argv)

    # Refuse to produce a "scaling" table that is actually a contention
    # table: with more workers than CPUs, parallel-wK cells time the
    # scheduler, and committing them as scaling evidence is worse than
    # committing nothing.  Checked before any cell runs so the refusal
    # costs nothing.
    cpu_count = os.cpu_count() or 1
    oversubscribed = [w for w in args.workers if w > cpu_count]
    if oversubscribed and not args.allow_oversubscribed:
        parser.error(
            f"worker count(s) {oversubscribed} exceed this host's "
            f"{cpu_count} CPU(s); scaling conclusions would be invalid. "
            "Drop --workers values or pass --allow-oversubscribed to "
            "measure contention deliberately."
        )

    results: List[Dict[str, Any]] = []
    for case in RUNGS[args.rung]:
        results.extend(run_cell(case, args.workers))

    write_json(
        args.out,
        {
            "suite": "dist",
            "schema_version": 1,
            "rung": args.rung,
            "seed": SOLVE_SEED,
            "environment": environment_stamp(),
            "results": results,
        },
    )
    print(f"wrote {len(results)} cells to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
