"""Statement-coverage measurement without external dependencies.

Runs the test suite under ``sys.settrace`` counting executed lines of
``src/repro`` and divides by the number of executable statement lines
(computed from the AST, the same statement granularity ``coverage.py``
reports).  CI uses ``pytest --cov`` proper; this tool exists so the
coverage ratchet in ``.github/workflows/ci.yml`` can be re-derived in
environments where ``coverage`` is not installed::

    PYTHONPATH=src python tools/line_coverage.py [pytest args...]

Prints per-package and total percentages; the CI floor is total minus one
point (see VERIFICATION.md).
"""

from __future__ import annotations

import ast
import os
import sys
from collections import defaultdict

SRC_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def executable_lines(path: str) -> set:
    """Line numbers of executable statements (coverage.py's granularity)."""
    with open(path, "r", encoding="utf-8") as stream:
        tree = ast.parse(stream.read(), filename=path)
    lines = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            # A docstring-expression statement is not counted as a miss by
            # coverage.py either; skip bare string constants.
            if isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Constant
            ) and isinstance(node.value.value, str):
                continue
            lines.add(node.lineno)
    return lines


def main() -> int:
    executed = defaultdict(set)
    prefix = SRC_ROOT + os.sep

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if event == "line":
            executed[filename].add(frame.f_lineno)
        return tracer

    import pytest

    sys.settrace(tracer)
    try:
        code = pytest.main(sys.argv[1:] or ["-q", "tests"])
    finally:
        sys.settrace(None)

    total_hit = total_lines = 0
    rows = []
    for dirpath, _, filenames in os.walk(os.path.join(SRC_ROOT, "repro")):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            lines = executable_lines(path)
            hit = len(lines & executed.get(path, set()))
            total_hit += hit
            total_lines += len(lines)
            rows.append((os.path.relpath(path, SRC_ROOT), hit, len(lines)))
    for rel, hit, count in rows:
        pct = 100.0 * hit / count if count else 100.0
        print(f"{pct:6.1f}%  {hit:5d}/{count:<5d}  {rel}")
    pct = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"\nTOTAL {pct:.2f}%  ({total_hit}/{total_lines} statements)")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
