"""Committee selection on a social network via MIS — backend comparison.

Scenario: pick a set of "spokespeople" from a social network such that no
two chosen people know each other (an independent set), and everyone not
chosen knows at least one spokesperson (maximality).  Social networks have
power-law degree distributions — exactly the heterogeneous-degree regime
where the paper's O(log log Δ) algorithm shines over per-round approaches.

The façade makes the comparison a loop over backends instead of four
differently-shaped calls.

Run:  python examples/social_network_mis.py
"""

from repro import barabasi_albert, solve


def main() -> None:
    # Preferential-attachment network: a few celebrity hubs, many leaves.
    network = barabasi_albert(5000, 3, seed=13)
    degrees = sorted(network.degrees(), reverse=True)
    print(
        f"Social network: {network.num_vertices} members, "
        f"{network.num_edges} friendships"
    )
    print(f"Top-5 hub degrees: {degrees[:5]} (median {degrees[len(degrees)//2]})")
    print()

    reports = {
        backend: solve("mis", network, backend=backend, seed=13)
        for backend in ("mpc", "congested_clique", "pregel", "greedy")
    }
    for backend, report in reports.items():
        assert report.valid
        rounds = f"{report.rounds} rounds" if report.rounds else "sequential"
        print(
            f"{backend:>16}: {report.size} spokespeople in {rounds} "
            f"({report.wall_time_s:.2f}s)"
        )

    paper = reports["mpc"]
    print(
        f"\nPaper's algorithm used {paper.extras['prefix_phases']} prefix phases "
        f"and {paper.extras['luby_rounds_simulated']} compressed Luby rounds; "
        f"the Pregel Luby baseline needed {reports['pregel'].rounds} full rounds."
    )
    hubs = [v for v in paper.vertex_set() if network.degree(v) > 50]
    print(f"Spokespeople that are hubs (degree > 50): {len(hubs)}")
    print(
        "Every member either is a spokesperson or is friends with one "
        "(maximality verified)."
    )


if __name__ == "__main__":
    main()
