"""Committee selection on a social network via MIS.

Scenario: pick a set of "spokespeople" from a social network such that no
two chosen people know each other (an independent set), and everyone not
chosen knows at least one spokesperson (maximality).  Social networks have
power-law degree distributions — exactly the heterogeneous-degree regime
where the paper's O(log log Δ) algorithm shines over per-round approaches.

Run:  python examples/social_network_mis.py
"""

from repro import barabasi_albert, mis_mpc
from repro.baselines.luby import luby_mis
from repro.graph.properties import is_maximal_independent_set


def main() -> None:
    # Preferential-attachment network: a few celebrity hubs, many leaves.
    network = barabasi_albert(5000, 3, seed=13)
    degrees = sorted(network.degrees(), reverse=True)
    print(
        f"Social network: {network.num_vertices} members, "
        f"{network.num_edges} friendships"
    )
    print(f"Top-5 hub degrees: {degrees[:5]} (median {degrees[len(degrees)//2]})")

    result = mis_mpc(network, seed=13)
    assert is_maximal_independent_set(network, result.mis)
    print(
        f"\nPaper's algorithm: {len(result.mis)} spokespeople "
        f"in {result.rounds} MPC rounds "
        f"({result.prefix_phases} prefix phases, "
        f"{result.luby_rounds_simulated} compressed Luby rounds)"
    )

    baseline = luby_mis(network, seed=13)
    print(
        f"Luby baseline:     {len(baseline.mis)} spokespeople "
        f"in {baseline.rounds} rounds (every Luby step costs a full round)"
    )

    hubs = [v for v in result.mis if network.degree(v) > 50]
    print(f"\nSpokespeople that are hubs (degree > 50): {len(hubs)}")
    print(
        "Every member either is a spokesperson or is friends with one "
        "(maximality verified)."
    )


if __name__ == "__main__":
    main()
