"""Writing your own distributed algorithm on the vertex-program engine.

The library's MPC substrate exposes a Pregel-style API: write a per-vertex
``compute`` function, and the engine runs it in bulk-synchronous
supersteps with real round counting and per-machine message-volume
enforcement.  This example implements distributed BFS from scratch in a
dozen lines and then runs the bundled Luby-MIS and matching programs.

Run:  python examples/vertex_program_engine.py
"""

from repro.graph.generators import gnp_random_graph
from repro.graph.properties import is_maximal_independent_set, is_maximal_matching
from repro.mpc.engine import PregelEngine
from repro.mpc.programs import luby_vertex_program, matching_vertex_program


def distributed_bfs(graph, source: int):
    """Breadth-first distances via message waves; one level per superstep."""

    def initial_state(vertex):
        return {"distance": 0 if vertex == source else None}

    def compute(ctx, messages):
        if ctx.superstep == 0 and ctx.vertex == source:
            ctx.send_to_neighbors(("dist", 1))
            ctx.vote_to_halt()
            return
        if ctx.state["distance"] is None:
            distances = [d for _, d in messages]
            if distances:
                ctx.state["distance"] = min(distances)
                ctx.send_to_neighbors(("dist", ctx.state["distance"] + 1))
        ctx.vote_to_halt()

    engine = PregelEngine(graph, seed=1)
    result = engine.run(compute, initial_state=initial_state)
    return result


def main() -> None:
    graph = gnp_random_graph(2000, 0.004, seed=11)
    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")

    bfs = distributed_bfs(graph, source=0)
    reached = sum(
        1 for state in bfs.states.values() if state["distance"] is not None
    )
    print(
        f"Distributed BFS:   reached {reached} vertices in "
        f"{bfs.supersteps} supersteps "
        f"(max machine message load {bfs.max_machine_message_words} words)"
    )

    mis = luby_vertex_program(graph, seed=11)
    assert is_maximal_independent_set(graph, mis.mis)
    print(
        f"Luby vertex program:     MIS of {len(mis.mis)} in "
        f"{mis.supersteps} supersteps ({mis.rounds} MPC rounds)"
    )

    matching = matching_vertex_program(graph, seed=11)
    assert is_maximal_matching(graph, matching.matching)
    print(
        f"Matching vertex program: {len(matching.matching)} edges in "
        f"{matching.supersteps} supersteps ({matching.rounds} MPC rounds)"
    )


if __name__ == "__main__":
    main()
