"""Monitoring-station placement via vertex cover, through the façade.

Scenario: a communication network where every link must be observed by a
monitoring station placed at one of its endpoints.  Minimum vertex cover
is NP-hard; the paper's MPC-Simulation yields a (2+ε) approximation in
O(log log n) rounds, and its fractional relaxation comes with a matching
lower-bound certificate (LP duality) — so the gap to optimal is *provable*
per instance, not just asymptotic.

Run:  python examples/sensor_cover.py
"""

from repro import gnp_random_graph, solve
from repro.graph.generators import grid_graph


def analyze(name: str, graph) -> None:
    cover = solve("vertex_cover", graph, config={"epsilon": 0.1}, seed=31)
    fractional = solve("fractional_matching", graph, config={"epsilon": 0.1}, seed=31)
    assert cover.valid and fractional.valid
    # LP duality: any fractional matching's weight lower-bounds any cover.
    lower_bound = fractional.metrics["weight"]
    print(
        f"{name:>24}: {cover.size:5d} stations cover "
        f"{graph.num_edges:6d} links in {cover.rounds} rounds; "
        f"certified within {cover.size / lower_bound:.2f}x of optimal"
    )


def main() -> None:
    print("Monitoring-station placement ((2+eps) vertex cover, Thm 1.2):\n")
    analyze("mesh backbone (grid)", grid_graph(25, 40))
    analyze("random network", gnp_random_graph(1500, 0.004, seed=31))
    analyze("dense datacenter", gnp_random_graph(400, 0.08, seed=31))


if __name__ == "__main__":
    main()
