"""Sliding-window committee selection on a growing social network.

Scenario: the spokesperson committee of examples/social_network_mis.py,
but the network is *live* — new members join by preferential attachment
(celebrities attract friendships), and only the most recent friendships
count (older ties go stale).  Instead of re-electing the committee from
scratch after every change, ``solve_stream`` repairs it incrementally:
only people whose friend circle actually changed are re-decided, and the
full O(log log Δ) solver re-runs only if a batch rewires too much of the
network at once.

Run:  python examples/social_network_stream.py
"""

from repro import barabasi_albert, solve_stream
from repro.stream import EdgeBatch, growth_batches


def main() -> None:
    # A year-one network: preferential attachment, a few celebrity hubs.
    network = barabasi_albert(3000, 3, seed=13)
    print(
        f"Initial network: {network.num_vertices} members, "
        f"{network.num_edges} friendships"
    )

    # The workload interleaves growth (new members joining, attaching to
    # popular members) with a sliding window over the oldest ties.
    grow = list(
        growth_batches(network, epochs=6, vertices_per_epoch=50, seed=13)
    )
    stale = sorted(network.edges())[:1200]  # the oldest ties, going stale
    batches = []
    for index, batch in enumerate(grow):
        batches.append(batch)
        expiring = stale[index * 200 : (index + 1) * 200]
        batches.append(
            EdgeBatch.make(deletions=expiring, timestamp=batch.timestamp + 0.5)
        )

    report = solve_stream(
        "mis",
        network,
        batches,
        seed=13,
        verify=True,  # certify independence + maximality after every epoch
    )

    print(
        f"Initial committee: {report.initial['size']} spokespeople "
        f"({report.initial['rounds']} MPC rounds, "
        f"{report.initial['wall_time_s']:.2f}s)"
    )
    print()
    for record in report.epochs:
        stats = record.stats
        change = (
            f"+{stats['new_vertices']} members, +{stats['inserted']} ties"
            if stats["new_vertices"]
            else f"-{stats['deleted']} stale ties"
        )
        print(
            f"epoch {stats['epoch']:>2}: {change:28s} -> "
            f"{stats['action']:7s} "
            f"(damage {100 * stats['damage_fraction']:4.1f}%, "
            f"{1000 * stats['wall_time_s']:6.2f} ms), "
            f"committee {stats['size']}, "
            f"certified {record.verification.get('ok', False)}"
        )

    assert report.ok
    print(
        f"\nFinal: {report.n_final} members, committee of {report.size}; "
        f"{report.epochs_repaired} epochs repaired locally, "
        f"{report.epochs_resolved} full re-elections."
    )
    print(
        "Every epoch's committee was certified independent and maximal — "
        "nobody on it knows another member, everyone off it knows one."
    )


if __name__ == "__main__":
    main()
