"""Marketplace trade matching via weighted matching (Corollary 1.4).

Scenario: a trading marketplace where an edge between two parties carries
the value of their potential trade, and each party can close at most one
trade.  Values are heavy-tailed (a few whale trades dominate), which is
precisely where unweighted matching fails: maximizing the *number* of
trades can forfeit almost all the *value*.

Run:  python examples/marketplace_weighted_matching.py
"""

from repro import mpc_maximum_matching, mpc_weighted_matching
from repro.graph.generators import random_weighted_graph
from repro.graph.properties import is_matching


def main() -> None:
    market = random_weighted_graph(
        600, 0.02, max_weight=1_000_000.0, distribution="zipf", seed=47
    )
    print(
        f"Marketplace: {market.num_vertices} parties, "
        f"{market.num_edges} potential trades, "
        f"top trade value ${market.max_weight():,.0f}"
    )

    weighted = mpc_weighted_matching(market, epsilon=0.1, seed=47)
    assert is_matching(market.structure, weighted.matching)
    print(
        f"\nWeight-aware (Cor 1.4):  {len(weighted.matching):4d} trades, "
        f"total value ${weighted.weight:,.0f} "
        f"({weighted.classes} weight classes, {weighted.rounds} rounds)"
    )

    unweighted = mpc_maximum_matching(market.structure, seed=47)
    value = market.matching_weight(unweighted.matching)
    print(
        f"Weight-blind (Thm 1.2):  {len(unweighted.matching):4d} trades, "
        f"total value ${value:,.0f}"
    )
    print(
        f"\nValue captured by weight-aware matching: "
        f"{weighted.weight / max(value, 1):.1f}x the weight-blind result"
    )


if __name__ == "__main__":
    main()
