"""Ad-slot allocation via bipartite matching.

Scenario: advertisers on one side, ad slots on the other, an edge where an
advertiser is eligible for a slot.  Maximize the number of filled slots.
This is the canonical matching workload the MPC literature motivates: the
eligibility graph is huge, no single machine holds it, and round count is
the cost that matters.

Compares the paper's (2+ε) pipeline and its (1+ε) refinement (Cor 1.3)
against the exact Hopcroft-Karp optimum.

Run:  python examples/ad_allocation_matching.py
"""

from repro import random_bipartite_graph, mpc_maximum_matching, one_plus_eps_matching
from repro.baselines.hopcroft_karp import hopcroft_karp_matching
from repro.graph.properties import is_matching


def main() -> None:
    advertisers, slots = 400, 400
    eligibility = random_bipartite_graph(advertisers, slots, 0.02, seed=21)
    print(
        f"Eligibility graph: {advertisers} advertisers x {slots} slots, "
        f"{eligibility.num_edges} eligible pairs"
    )

    optimum = hopcroft_karp_matching(eligibility)
    print(f"\nExact optimum (Hopcroft-Karp): {len(optimum)} slots fillable")

    base = mpc_maximum_matching(eligibility, seed=21)
    assert is_matching(eligibility, base.matching)
    print(
        f"(2+eps) pipeline (Thm 1.2):    {len(base.matching)} slots filled "
        f"in {base.rounds} MPC rounds "
        f"({len(base.matching)/len(optimum):.1%} of optimum)"
    )

    refined = one_plus_eps_matching(eligibility, epsilon=0.25, seed=21)
    assert is_matching(eligibility, refined.matching)
    print(
        f"(1+eps) refinement (Cor 1.3):  {len(refined.matching)} slots filled "
        f"after {refined.sweeps} augmentation sweeps "
        f"({len(refined.matching)/len(optimum):.1%} of optimum)"
    )


if __name__ == "__main__":
    main()
