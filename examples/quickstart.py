"""Quickstart: the library's three headline algorithms on one graph.

Run:  python examples/quickstart.py
"""

from repro import (
    gnp_random_graph,
    mis_mpc,
    mpc_maximum_matching,
    mpc_vertex_cover,
)
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_vertex_cover,
)


def main() -> None:
    # A random graph with 1000 vertices and ~2% edge density.
    graph = gnp_random_graph(1000, 0.02, seed=7)
    print(f"Input graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Theorem 1.1 — maximal independent set in O(log log Δ) MPC rounds.
    mis = mis_mpc(graph, seed=7)
    print(
        f"\nMIS (Thm 1.1):       {len(mis.mis):5d} vertices  "
        f"in {mis.rounds} MPC rounds "
        f"(valid: {is_maximal_independent_set(graph, mis.mis)})"
    )

    # Theorem 1.2 — (2+eps)-approximate maximum matching.
    matching = mpc_maximum_matching(graph, seed=7)
    print(
        f"Matching (Thm 1.2):  {len(matching.matching):5d} edges     "
        f"in {matching.rounds} MPC rounds "
        f"(valid: {is_matching(graph, matching.matching)})"
    )

    # Theorem 1.2 — (2+eps)-approximate minimum vertex cover.
    cover = mpc_vertex_cover(graph, seed=7)
    print(
        f"Vertex cover:        {cover.size:5d} vertices  "
        f"in {cover.rounds} MPC rounds "
        f"(valid: {is_vertex_cover(graph, cover.cover)})"
    )

    # The matching/cover duality sandwich: |M| <= |VC*| <= |cover|.
    print(
        f"\nDuality check: matching {len(matching.matching)} "
        f"<= cover {cover.size} (always true for valid outputs)"
    )


if __name__ == "__main__":
    main()
