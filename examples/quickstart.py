"""Quickstart: the library's headline algorithms through the façade.

One call — ``solve(task, graph, backend=..., seed=...)`` — runs any task
on any registered backend and returns a uniform, serializable RunReport.

Run:  python examples/quickstart.py
"""

from repro import gnp_random_graph, solve


def main() -> None:
    # A random graph with 1000 vertices and ~2% edge density.
    graph = gnp_random_graph(1000, 0.02, seed=7)
    print(f"Input graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Theorem 1.1 — maximal independent set in O(log log Δ) MPC rounds.
    mis = solve("mis", graph, seed=7)  # backend="auto" picks the paper's MPC
    print(
        f"\nMIS (Thm 1.1):       {mis.size:5d} vertices  "
        f"in {mis.rounds} MPC rounds (valid: {mis.valid})"
    )

    # Theorem 1.2 — (2+eps)-approximate maximum matching.
    matching = solve("matching", graph, seed=7)
    print(
        f"Matching (Thm 1.2):  {matching.size:5d} edges     "
        f"in {matching.rounds} MPC rounds (valid: {matching.valid})"
    )

    # Theorem 1.2 — (2+eps)-approximate minimum vertex cover.
    cover = solve("vertex_cover", graph, seed=7)
    print(
        f"Vertex cover:        {cover.size:5d} vertices  "
        f"in {cover.rounds} MPC rounds (valid: {cover.valid})"
    )

    # The matching/cover duality sandwich: |M| <= |VC*| <= |cover|.
    print(
        f"\nDuality check: matching {matching.size} "
        f"<= cover {cover.size} (always true for valid outputs)"
    )

    # Every report serializes; sweeps stream these as JSONL (solve_many).
    print(f"\nReport snapshot: {mis.to_json()[:100]}...")


if __name__ == "__main__":
    main()
